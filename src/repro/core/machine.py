"""Machine assembly: nodes, hubs, processors, and run helpers.

A :class:`Machine` is the root object of every simulation::

    from repro import Machine, SystemConfig

    m = Machine(SystemConfig.table1(n_processors=16))
    counter = m.alloc("counter", home_node=0)

    def thread(proc):
        old = yield from proc.amo_inc(counter.addr, test=16)
        yield from proc.spin_until(counter.addr, lambda v: v >= 16)

    m.run_threads(thread)        # one thread per CPU, to completion

Each node's :class:`Hub` models the paper's Figure 2 chip: processor
interface, memory controller (DRAM + backing store), directory controller
(home engine), network interface (egress port with injection
serialization), active memory unit, and the active-message endpoint.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.activemsg.endpoint import ActiveMessageEndpoint
import repro.activemsg.handlers  # noqa: F401  (registers built-in handlers)
from repro.amu.unit import ActiveMemoryUnit
from repro.coherence.protocol import HomeEngine
from repro.config.parameters import SystemConfig
from repro.cpu.processor import Processor
from repro.mem.address import AddressSpace, Variable
from repro.mem.backing import BackingStore
from repro.mem.dram import Dram
from repro.network.fabric import Network
from repro.network.message import Message, MessageKind
from repro.sim.backends import create_simulator
from repro.sim.backends.model import model_classes
from repro.sim.primitives import Resource, Signal, Timeout, all_of


class _EgressWave:
    """One fan-out packet train through an egress port, one kernel event
    per packet.

    Behaviour-equivalent to a coroutine injecting the train with
    sequential :meth:`Hub.egress_send` calls — same grant cycles, same
    FIFO fairness with queued processes (after each packet a queued
    waiter takes the port before the wave's next packet), same injection
    times, same resource accounting — but the per-packet *acquire-grant*
    and *occupancy-timeout* generator resumptions collapse into a single
    expiry callback, which is what makes N-way invalidation waves and
    word-update pushes O(1) kernel events per packet with no generator
    frames at all.  ``done`` fires at the last packet's injection cycle;
    callers must wait on it before proceeding (the legacy coroutine
    could not proceed before its last injection either).

    The wave joins the egress :class:`Resource`'s FIFO queue as a
    duck-typed process: ``Resource.release`` resumes whatever it pops
    via ``._rn``, so an object exposing that attribute can stand in
    line with real processes.
    """

    __slots__ = ("hub", "sim", "res", "messages", "occ", "index", "done",
                 "_rn", "_expiry")

    def __init__(self, hub: "Hub", messages: list[Message], occ: int,
                 done: Signal) -> None:
        self.hub = hub
        self.sim = hub.sim
        self.res = hub._egress
        self.messages = messages
        self.occ = occ
        self.index = 0
        self.done = done
        self._rn = (self._granted, ())
        self._expiry = (self._expire, ())

    def start(self) -> None:
        res = self.res
        res._sim = self.sim
        if res._busy:
            res._queue.append(self)
        else:
            res._busy = True
            res.grants += 1
            res._acquired_at = self.sim.now
            self.sim._push_future(self.sim.now + self.occ, self._expiry)

    def _granted(self) -> None:
        # Resource.release already did the grant bookkeeping for us
        self.sim._push_future(self.sim.now + self.occ, self._expiry)

    def _expire(self) -> None:
        sim, res = self.sim, self.res
        now = sim.now
        res.busy_cycles += now - res._acquired_at
        msg = self.messages[self.index]
        self.index += 1
        more = self.index < len(self.messages)
        if res._queue:
            # grant the port to the queued process first; with packets
            # left, rejoin at the tail (exactly where a re-acquiring
            # coroutine would land)
            waiter = res._queue.popleft()
            res.grants += 1
            res._acquired_at = now
            sim._ring.append(waiter._rn)
            if more:
                res._queue.append(self)
        elif more:
            # immediate self re-grant (legacy: release, then re-acquire
            # in the same cycle with nobody waiting)
            res.grants += 1
            res._acquired_at = now
            sim._push_future(now + self.occ, self._expiry)
        else:
            res._busy = False
        self.hub.net.send(msg)
        if not more:
            self.done.fire(sim)


class Hub:
    """One node's hub chip (Figure 2): MC, directory, NI, AMU, AM endpoint."""

    #: egress-wave class; the accel backend substitutes a subclass whose
    #: per-packet callbacks are compiled (repro.sim.backends.model)
    _wave_cls = _EgressWave

    #: cache-controller class override; None means the reference
    #: CacheController (set on the accel hub subclass so Processor picks
    #: up the compiled-coroutine controller without an import cycle)
    _controller_cls = None

    #: home-engine class override; None means the reference HomeEngine
    _home_cls = None

    __slots__ = ("machine", "node", "sim", "config", "net", "backing",
                 "dram", "_egress", "home_engine", "amu", "actmsg",
                 "controllers", "_t_egress_update", "_t_egress_ctrl",
                 "_t_egress_line", "_routes")

    def __init__(self, machine: "Machine", node: int) -> None:
        self.machine = machine
        self.node = node
        self.sim = machine.sim
        self.config = machine.config
        self.net = machine.net
        self.backing = machine.backing
        self.dram = Dram(self.sim, node, self.config.dram)
        self._egress = Resource(name=f"egress[{node}]")
        self.home_engine = (self._home_cls or HomeEngine)(self)
        self.amu = ActiveMemoryUnit(self)
        self.actmsg = ActiveMessageEndpoint(self)
        self.net.attach(node, self.receive)
        #: controllers of the CPUs on this node, keyed by cpu id
        self.controllers: dict[int, object] = {}
        # Egress occupancy depends only on the message kind; Timeout is
        # stateless, so one instance per cost class serves every send.
        hub_cfg = self.config.hub
        self._t_egress_update = Timeout(
            hub_cfg.hub_to_cpu(hub_cfg.update_egress_hub_cycles))
        self._t_egress_ctrl = Timeout(
            hub_cfg.hub_to_cpu(hub_cfg.egress_occupancy_hub_cycles))
        self._t_egress_line = Timeout(
            hub_cfg.hub_to_cpu(hub_cfg.egress_occupancy_hub_cycles * 2))
        #: delivery routing table, kind -> handler (see :meth:`receive`)
        self._routes = {
            MessageKind.GET_S: self.home_engine.handle,
            MessageKind.GET_X: self.home_engine.handle,
            MessageKind.WRITEBACK: self.home_engine.handle,
            MessageKind.UNCACHED_READ: self.home_engine.handle,
            MessageKind.UNCACHED_WRITE: self.home_engine.handle,
            MessageKind.INVALIDATE: self._on_invalidate,
            MessageKind.INTERVENTION: self._on_intervention,
            MessageKind.WORD_UPDATE: self._on_word_update,
            MessageKind.INV_ACK: self._on_inv_ack,
            MessageKind.AMO_REQUEST: self.amu.enqueue,
            MessageKind.MAO_REQUEST: self.amu.enqueue,
            MessageKind.AM_REQUEST: self.actmsg.handle,
        }

    # ------------------------------------------------------------------
    def egress_send(self, msg: Message):
        """Coroutine: inject a message through this hub's egress port.

        The port serializes injection — an N-target fan-out (invalidation
        wave, word-update push) costs N injection slots.  Line-carrying
        packets occupy the port twice as long as control/word packets.
        """
        kind = msg.kind
        if kind is MessageKind.WORD_UPDATE:
            occupancy = self._t_egress_update
        elif kind.carries_line:
            occupancy = self._t_egress_line
        else:
            occupancy = self._t_egress_ctrl
        yield self._egress.acquire()
        try:
            yield occupancy
        finally:
            self._egress.release()
        self.net.send(msg)

    def egress_wave(self, messages: list[Message]) -> Signal:
        """Inject a same-kind packet train through this hub's egress port.

        Cycle-equivalent to injecting each packet with
        :meth:`egress_send` back to back, at one kernel event per packet
        instead of three (see :class:`_EgressWave`).  Returns a signal
        that fires at the last packet's injection; the caller must
        ``yield`` its ``wait()`` before touching protocol state the wave
        publishes — matching where the sequential coroutine resumed.
        """
        kind = messages[0].kind
        if kind is MessageKind.WORD_UPDATE:
            occ = self._t_egress_update.delay
        elif kind.carries_line:
            occ = self._t_egress_line.delay
        else:
            occ = self._t_egress_ctrl.delay
        done = Signal(name=f"egress-wave[{self.node}]")
        self._wave_cls(self, messages, occ, done).start()
        return done

    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        """Delivery dispatch for messages addressed to this node.

        One dict probe per delivery (enum members hash by identity)
        instead of a membership-scan cascade — this sits on every
        message's critical path.
        """
        route = self._routes.get(msg.kind)
        if route is None:
            raise RuntimeError(f"hub {self.node}: unroutable {msg!r}")
        route(msg)

    def _on_invalidate(self, msg: Message) -> None:
        self._controller_of(msg).on_invalidate(msg)

    def _on_intervention(self, msg: Message) -> None:
        self._controller_of(msg).on_intervention(msg)

    def _on_word_update(self, msg: Message) -> None:
        self._controller_of(msg).on_word_update(msg)

    def _on_inv_ack(self, msg: Message) -> None:
        msg.payload.ack(self.sim)

    def _controller_of(self, msg: Message):
        if msg.dst_cpu is None:
            raise RuntimeError(f"{msg!r} has no dst_cpu")
        ctrl = self.controllers.get(msg.dst_cpu)
        if ctrl is None:
            raise RuntimeError(
                f"cpu{msg.dst_cpu} is not on node {self.node}")
        return ctrl


class Machine:
    """A complete simulated CC-NUMA multiprocessor."""

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        self.config = config or SystemConfig()
        self.sim = create_simulator(self.config.kernel_backend)
        self.backing = BackingStore()
        net_cls, hub_cls = model_classes(self.config.kernel_backend)
        self.net = net_cls(self.sim, self.config.n_nodes, self.config.network)
        self.address_space = AddressSpace(self.config.n_nodes)
        self.hubs = [hub_cls(self, node) for node in range(self.config.n_nodes)]
        self.cpus: list[Processor] = []
        #: simulated time when the last thread of the most recent
        #: :meth:`run_threads` finished (excludes stale timer events)
        self.last_completion_time = 0
        #: optional TraceRecorder (see repro.trace) — None = no tracing
        self.tracer = None
        #: optional MachineMetrics (see repro.obs) — None = no metrics
        self.obs = None
        #: optional CoherenceSanitizer (see repro.check) — None = unchecked
        self.sanitizer = None
        #: ShardContext when this machine is one shard's replica of a
        #: partitioned run (see repro.shard) — None = ordinary machine
        self.shard = None
        for cpu_id in range(self.config.n_processors):
            hub = self.hubs[self.node_of_cpu(cpu_id)]
            proc = Processor(cpu_id, hub)
            hub.controllers[cpu_id] = proc.controller
            self.cpus.append(proc)
        # adopt the active shard context, if a shard worker is building
        # us (function-level import: repro.shard pulls in the runner
        # registry, which imports the workloads, which import us)
        from repro.shard.context import maybe_bind
        maybe_bind(self)

    # ------------------------------------------------------------------
    @property
    def n_processors(self) -> int:
        return self.config.n_processors

    def node_of_cpu(self, cpu_id: int) -> int:
        return cpu_id // self.config.cpus_per_node

    # ------------------------------------------------------------------
    # memory placement & direct access
    # ------------------------------------------------------------------
    def alloc(self, name: str, home_node: int = 0, words: int = 1,
              stride_lines: bool = False) -> Variable:
        """Allocate a shared variable homed at ``home_node``."""
        return self.address_space.alloc(name, home_node, words=words,
                                        stride_lines=stride_lines)

    def poke(self, addr: int, value: int) -> None:
        """Zero-time direct write to memory (workload initialization).

        Only safe before threads run or between episodes when the word is
        known uncached; tests assert both usages.
        """
        self.backing.write_word(addr, value)
        if self.sanitizer is not None:
            self.sanitizer.note_poke(addr, value)

    def peek(self, addr: int) -> int:
        """Zero-time coherent-best-effort read: AMU cache, any exclusive
        cache copy, else memory (end-of-run verification)."""
        from repro.mem.address import home_of
        amu_val = self.hubs[home_of(addr)].amu.peek(addr)
        if amu_val is not None:
            return amu_val
        for proc in self.cpus:
            line = proc.controller.l2.probe(addr)
            if line is not None and line.dirty:
                return line.read_word(addr)
        return self.backing.read_word(addr)

    # ------------------------------------------------------------------
    # running workloads
    # ------------------------------------------------------------------
    def run_threads(self, thread_fn: Callable, cpus: Optional[list[int]] = None,
                    max_events: Optional[int] = None) -> list:
        """Spawn ``thread_fn(processor)`` on each CPU and run to completion.

        Returns the per-thread results in CPU order.  Raises on deadlock
        (event queue drained with threads still blocked).
        """
        if self.shard is not None:
            return self.shard.run_threads(self, thread_fn, cpus, max_events)
        targets = self.cpus if cpus is None else [self.cpus[i] for i in cpus]
        def _main():
            procs = [self.sim.spawn(thread_fn(p), name=f"thread-cpu{p.cpu_id}")
                     for p in targets]
            results = yield from all_of(self.sim, procs)
            # Stale events (unexpired retransmission timers) may run the
            # clock past this point; completion time is captured here.
            self.last_completion_time = self.sim.now
            return results
        return self.sim.run_process(_main(), name="run_threads",
                                    max_events=max_events)

    # ------------------------------------------------------------------
    # snapshot / warm-start
    # ------------------------------------------------------------------
    def snapshot(self):
        """Checkpoint all mutable simulation state at quiescence.

        The returned :class:`~repro.core.snapshot.MachineSnapshot` is
        bound to this machine; :meth:`restore` rewinds to it in place.
        Requires a fully drained event queue and no attached sanitizer
        (see :mod:`repro.core.snapshot` for the full contract).
        """
        from repro.core.snapshot import MachineSnapshot
        return MachineSnapshot(self)

    def restore(self, snap) -> None:
        """Rewind this machine to ``snap`` (in place, at quiescence).

        A restored machine re-runs cycle-for-cycle identically to a
        fresh build replayed from the same point — the determinism
        parity suite pins this against golden fingerprints.
        """
        if snap.machine is not self:
            raise ValueError(
                "snapshot belongs to a different machine instance; "
                "restore is in-place (live coroutines cannot be copied)")
        snap.restore()

    def check_coherence_invariants(self) -> None:
        """Directory/cache cross-checks; used liberally by the test suite.

        Under sharded execution only this shard's hubs have live
        directory state, and an entry owned exclusively by a *remote*
        CPU cannot be cross-checked here (that CPU's cache lives on its
        own shard's replica) — such entries are skipped; every shard
        checking its local view covers the whole machine.
        """
        from repro.cache.state import LineState
        from repro.coherence.directory import DirState
        shard = self.shard
        for hub in self.hubs:
            if shard is not None and not shard.owns_node(hub.node):
                continue
            for ent in hub.home_engine.directory.known_entries():
                ent.check()
                if (shard is not None and ent.state is DirState.EXCLUSIVE
                        and not shard.owns_cpu(ent.owner)):
                    continue
                owners = [p.cpu_id for p in self.cpus
                          if (ln := p.controller.l2.probe(ent.line_addr))
                          is not None and ln.state is LineState.EXCLUSIVE]
                if ent.state is DirState.EXCLUSIVE:
                    assert owners == [ent.owner], (
                        f"{ent!r}: cache owners {owners}")
                else:
                    assert not owners, (
                        f"{ent!r}: unexpected exclusive copies {owners}")

    def describe(self) -> str:
        """Human-readable machine summary (CPUs, nodes, topology, key
        latencies) — handy at the top of experiment logs."""
        cfg = self.config
        topo = self.net.topology
        lines = [
            f"{cfg.n_processors} CPUs on {cfg.n_nodes} nodes "
            f"({cfg.cpus_per_node}/node), "
            f"{topo.n_levels}-level radix-{topo.radix} fat tree "
            f"(diameter {topo.diameter_hops} hops)",
            f"L1 {cfg.l1.size_bytes // 1024}KB/{cfg.l1.ways}w/"
            f"{cfg.l1.latency_cycles}cy, "
            f"L2 {cfg.l2.size_bytes // (1024 * 1024)}MB/{cfg.l2.ways}w/"
            f"{cfg.l2.latency_cycles}cy, "
            f"DRAM {cfg.dram.latency_cycles}cy, "
            f"hop {cfg.network.hop_latency_cycles}cy",
            f"AMU: {cfg.amu.cache_words}-word cache, "
            f"{cfg.amu.op_latency_hub_cycles} hub-cycle ops"
            + ("" if cfg.amu.cache_enabled else " (cache DISABLED)"),
        ]
        return "\n".join(lines)
