"""Public façade: machine construction and the user programming model.

:class:`~repro.core.machine.Machine` assembles the full CC-NUMA system
from a :class:`~repro.config.parameters.SystemConfig` — simulator kernel,
fat-tree network, per-node hubs (directory + DRAM + AMU + active-message
endpoint), per-CPU processors — and provides the thread-spawning and
variable-placement API workloads use.
"""

from repro.core.machine import Hub, Machine

__all__ = ["Machine", "Hub"]
