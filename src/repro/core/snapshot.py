"""Machine snapshot/restore: checkpoint a quiescent machine, replay later.

A sweep spends most of its wall time re-doing identical work: every point
builds a fresh :class:`~repro.core.machine.Machine` and re-simulates the
warm-up episodes before measuring.  :class:`MachineSnapshot` checkpoints
*all* mutable simulation state of a machine at quiescence — kernel clock
and event counter, backing memory, caches and their LRU clocks, directory
entries, AMU/MAO state, active-message dedup tables, per-CPU RNG streams,
every resource's utilization counters — so the warmed machine can be
rewound and re-run any number of times.  A restored run is
**cycle-for-cycle identical** to a fresh build+warm+run of the same
configuration; the determinism-parity suite pins this with golden
fingerprints at 32 and 512 CPUs.

Why in-place restore instead of a copyable machine: model code is
coroutines, and live generators cannot be copied.  At quiescence the only
live processes are the per-node AMU dispatchers, parked on their empty
input queues with no loop-carried state (their locals are re-derived
per request), so *data* state is the whole state.  Both :func:`capture`
and :meth:`MachineSnapshot.restore` therefore require the event queue to
be fully drained and refuse to run otherwise.

:class:`MachinePool` adds memoized machine construction keyed by the
(frozen, hashable) :class:`~repro.config.parameters.SystemConfig`: the
first acquire builds the machine and checkpoints its pristine state; every
later acquire for an equal config rewinds instead of reconstructing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.amu.cache import AmuCacheEntry
from repro.cache.line import CacheLine

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.parameters import SystemConfig
    from repro.core.machine import Machine
    from repro.sim.primitives import FifoQueue, Resource


class SnapshotError(RuntimeError):
    """Snapshot/restore attempted on a machine not at quiescence."""


# ----------------------------------------------------------------------
# small helpers
# ----------------------------------------------------------------------
def _resource_state(res: "Resource", where: str) -> tuple[int, int]:
    if res._busy or res._queue:
        raise SnapshotError(
            f"{where}: resource {res.name!r} busy at snapshot "
            f"(queue depth {len(res._queue)})")
    return (res.grants, res.busy_cycles)


def _restore_resource(res: "Resource", state: tuple[int, int]) -> None:
    res.grants, res.busy_cycles = state
    res._busy = False
    res._queue.clear()


def _queue_state(queue: "FifoQueue", where: str) -> tuple[int, int]:
    if queue._items:
        raise SnapshotError(
            f"{where}: queue {queue.name!r} holds {len(queue._items)} "
            f"items at snapshot")
    return (queue.puts, queue.max_depth)


def _cache_state(cache) -> tuple:
    sets = {
        idx: {
            addr: (ln.state, dict(ln.words), ln.dirty, ln.last_use)
            for addr, ln in lines.items()
        }
        for idx, lines in cache._sets.items() if lines
    }
    return (sets, cache._stamp, cache.hits, cache.misses, cache.evictions,
            cache.invalidations, cache.word_updates)


def _restore_cache(cache, state: tuple) -> None:
    (sets, cache._stamp, cache.hits, cache.misses, cache.evictions,
     cache.invalidations, cache.word_updates) = state
    cache._sets.clear()
    for idx, lines in sets.items():
        cache._sets[idx] = {
            addr: CacheLine(line_addr=addr, state=st, words=dict(words),
                            dirty=dirty, last_use=last_use)
            for addr, (st, words, dirty, last_use) in lines.items()
        }


# ----------------------------------------------------------------------
class MachineSnapshot:
    """Checkpoint of one machine's complete mutable simulation state.

    Build with :meth:`Machine.snapshot`; apply with
    :meth:`Machine.restore`.  A snapshot is bound to the machine instance
    it was captured from (restore is in-place: the live AMU dispatcher
    coroutines cannot be copied into another machine).
    """

    __slots__ = ("machine", "sim", "backing", "address_space", "net",
                 "stats", "hubs", "cpus", "last_completion_time")

    def __init__(self, machine: "Machine") -> None:
        sim = machine.sim
        # pending_events() is backend-neutral (compiled kernels do not
        # expose the reference's _ring/_times/_buckets internals)
        if sim.pending_events():
            raise SnapshotError(
                f"snapshot requires a drained event queue "
                f"({sim.pending_events()} events pending at t={sim.now})")
        if machine.sanitizer is not None:
            raise SnapshotError(
                "detach the coherence sanitizer before snapshotting "
                "(its oracle holds run-specific state); re-attach after "
                "restore")
        self.machine = machine
        self.sim = (sim.now, sim.events_dispatched)
        backing = machine.backing
        self.backing = (dict(backing._words), backing.reads, backing.writes)
        space = machine.address_space
        self.address_space = (dict(space._next_free), dict(space.symbols))

        net = machine.net
        self.net = (list(net._uplink_free_at), list(net._downlink_free_at),
                    net.link_busy_cycles, dict(net._link_free_at),
                    dict(net._last_delivery), list(net._inj_seq))
        st = net.stats
        self.stats = (st.snapshot(), st.trace_enabled, list(st.trace))

        self.hubs = [self._capture_hub(hub) for hub in machine.hubs]
        self.cpus = [self._capture_cpu(proc) for proc in machine.cpus]
        self.last_completion_time = machine.last_completion_time

    # ------------------------------------------------------------------
    @staticmethod
    def _capture_hub(hub) -> tuple:
        where = f"hub[{hub.node}]"
        home = hub.home_engine
        directory = {}
        for line, ent in home.directory._entries.items():
            directory[line] = (
                ent.state, ent.sharer_mask, ent.owner, ent.amu_sharer,
                ent.version, _resource_state(ent.busy, where))
        home_state = (
            directory, home.transactions, home.get_s_served,
            home.get_x_served, home.writebacks_served,
            home.invalidations_sent, home.interventions_sent,
            home.word_updates_pushed)
        amu = hub.amu
        amu_state = (
            {w: (e.value, e.last_use) for w, e in amu.cache._entries.items()},
            amu.cache._stamp, amu.cache.hits, amu.cache.misses,
            amu.cache.evictions, _queue_state(amu.queue, where),
            amu.ops_executed, amu.puts_issued, amu.test_matches,
            amu.puts_deferred)
        actmsg = hub.actmsg
        # _PendingCall records are write-once after completion and every
        # pre-snapshot call has completed at quiescence, so sharing the
        # record objects (shallow dict copy) is sound; rolling the dict
        # itself back is what matters — the replayed run reuses the same
        # (requester, seq) keys and must not hit stale dedup entries.
        actmsg_state = (
            dict(actmsg._calls), actmsg.invocations,
            actmsg.duplicates_dropped, actmsg.replies_resent,
            _resource_state(actmsg.handler_cpu, where))
        return (
            _resource_state(hub.dram._channel, where),
            hub.dram.line_accesses, hub.dram.word_accesses,
            _resource_state(hub._egress, where),
            home_state, amu_state, actmsg_state)

    @staticmethod
    def _capture_cpu(proc) -> tuple:
        ctrl = proc.controller
        where = f"cpu{proc.cpu_id}"
        if ctrl._inflight:
            raise SnapshotError(f"{where}: fills in flight at snapshot")
        if ctrl._pending_writebacks:
            raise SnapshotError(f"{where}: writebacks in flight at snapshot")
        if ctrl._rmw_locks:
            raise SnapshotError(f"{where}: RMW window open at snapshot")
        meta = {}
        for line, m in ctrl._meta.items():
            if m.gate._waiters:
                raise SnapshotError(
                    f"{where}: spinner parked on {line:#x} at snapshot")
            meta[line] = m.version
        return (
            proc._am_seq, proc.amo_ops, proc.mao_port.ops_issued,
            _cache_state(ctrl.l1), _cache_state(ctrl.l2),
            ctrl._reservation, meta,
            ctrl.sc_failures, ctrl.sc_successes, ctrl.spin_wakeups,
            ctrl.wb_race_interventions, ctrl._backoff_rng.getstate())

    # ------------------------------------------------------------------
    def restore(self) -> None:
        """Rewind the bound machine to this checkpoint (in place)."""
        machine = self.machine
        sim = machine.sim
        if sim.pending_events():
            raise SnapshotError(
                f"restore requires a drained event queue "
                f"({sim.pending_events()} events pending at t={sim.now})")
        if machine.sanitizer is not None:
            raise SnapshotError(
                "detach the coherence sanitizer before restore; re-attach "
                "afterwards so its oracle snapshots the restored memory")
        sim.now, sim.events_dispatched = self.sim

        backing = machine.backing
        words, backing.reads, backing.writes = self.backing
        backing._words = dict(words)
        space = machine.address_space
        next_free, symbols = self.address_space
        space._next_free = dict(next_free)
        space.symbols = dict(symbols)

        net = machine.net
        (uplink, downlink, net.link_busy_cycles, link_free,
         last_delivery, inj_seq) = self.net
        net._uplink_free_at = list(uplink)
        net._downlink_free_at = list(downlink)
        net._link_free_at = dict(link_free)
        net._last_delivery = dict(last_delivery)
        net._inj_seq = list(inj_seq)
        counters, trace_enabled, trace = self.stats
        st = net.stats
        st.messages = type(st.messages)(counters.messages)
        st.bytes = type(st.bytes)(counters.bytes)
        st.hop_bytes = type(st.hop_bytes)(counters.hop_bytes)
        st.local_messages = type(st.local_messages)(counters.local_messages)
        st.retransmits = counters.retransmits
        st.trace_enabled = trace_enabled
        st.trace[:] = trace

        for hub, state in zip(machine.hubs, self.hubs):
            self._restore_hub(hub, state)
        for proc, state in zip(machine.cpus, self.cpus):
            self._restore_cpu(proc, state)
        machine.last_completion_time = self.last_completion_time

    # ------------------------------------------------------------------
    @staticmethod
    def _restore_hub(hub, state: tuple) -> None:
        (dram_channel, line_accesses, word_accesses, egress,
         home_state, amu_state, actmsg_state) = state
        _restore_resource(hub.dram._channel, dram_channel)
        hub.dram.line_accesses = line_accesses
        hub.dram.word_accesses = word_accesses
        _restore_resource(hub._egress, egress)

        home = hub.home_engine
        (directory, home.transactions, home.get_s_served, home.get_x_served,
         home.writebacks_served, home.invalidations_sent,
         home.interventions_sent, home.word_updates_pushed) = home_state
        entries = home.directory._entries
        # entries born after the checkpoint are dropped; surviving ones
        # keep their identity (and their busy Resource) and are rewound.
        # Entries in the checkpoint but absent now are re-created: a
        # pooled machine may have run a different workload (other lines)
        # since this snapshot was taken.
        for line in [ln for ln in entries if ln not in directory]:
            del entries[line]
        for line, (dstate, mask, owner, amu_sharer, version,
                   busy) in directory.items():
            ent = home.directory.entry(line)
            ent.state = dstate
            ent.sharer_mask = mask
            ent.owner = owner
            ent.amu_sharer = amu_sharer
            ent.version = version
            _restore_resource(ent.busy, busy)

        amu = hub.amu
        (entries_state, amu.cache._stamp, amu.cache.hits, amu.cache.misses,
         amu.cache.evictions, (amu.queue.puts, amu.queue.max_depth),
         amu.ops_executed, amu.puts_issued, amu.test_matches,
         amu.puts_deferred) = amu_state
        amu.cache._entries.clear()
        for word, (value, last_use) in entries_state.items():
            amu.cache._entries[word] = AmuCacheEntry(
                word_addr=word, value=value, last_use=last_use)
        amu.queue._items.clear()

        actmsg = hub.actmsg
        (calls, actmsg.invocations, actmsg.duplicates_dropped,
         actmsg.replies_resent, handler_cpu) = actmsg_state
        actmsg._calls = dict(calls)
        _restore_resource(actmsg.handler_cpu, handler_cpu)

    @staticmethod
    def _restore_cpu(proc, state: tuple) -> None:
        ctrl = proc.controller
        (proc._am_seq, proc.amo_ops, proc.mao_port.ops_issued,
         l1, l2, ctrl._reservation, meta,
         ctrl.sc_failures, ctrl.sc_successes, ctrl.spin_wakeups,
         ctrl.wb_race_interventions, rng_state) = state
        _restore_cache(ctrl.l1, l1)
        _restore_cache(ctrl.l2, l2)
        ctrl._inflight.clear()
        ctrl._pending_writebacks.clear()
        ctrl._rmw_locks.clear()
        for line in [ln for ln in ctrl._meta if ln not in meta]:
            del ctrl._meta[line]
        for line, version in meta.items():
            # get-or-create: a pooled machine restored across workloads
            # may lack meta for lines only this snapshot's run spins on
            ctrl._line_meta(line).version = version
        ctrl._backoff_rng.setstate(rng_state)


# ----------------------------------------------------------------------
class MachinePool:
    """Memoized machine construction keyed by configuration.

    ``acquire(config)`` returns a machine in its *pristine* post-build
    state: built fresh on the first call, rewound from the pristine
    checkpoint on every later call with an equal config.  Rewinding rolls
    the address space back too, so successive workloads re-allocate the
    same addresses a fresh machine would hand out — behaviourally
    indistinguishable from reconstruction, minus the construction cost.
    """

    def __init__(self) -> None:
        self._entries: dict["SystemConfig",
                            tuple["Machine", MachineSnapshot]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def acquire(self, config: "SystemConfig") -> "Machine":
        from repro.core.machine import Machine

        entry = self._entries.get(config)
        if entry is None:
            machine = Machine(config)
            # park the AMU dispatcher processes (their startup events are
            # still queued right after construction); a fresh machine
            # dispatches these same events inside its first run_threads,
            # so the restored event count lines up with a fresh build
            machine.sim.run()
            self._entries[config] = (machine, machine.snapshot())
            return machine
        machine, pristine = entry
        machine.restore(pristine)
        return machine

    def clear(self) -> None:
        self._entries.clear()


#: process-wide pool used by workload drivers when warm-start is requested
GLOBAL_POOL: Optional[MachinePool] = None


def global_pool() -> MachinePool:
    global GLOBAL_POOL
    if GLOBAL_POOL is None:
        GLOBAL_POOL = MachinePool()
    return GLOBAL_POOL
