"""Parallel sweep executor with caching, crash retry, and timeouts.

:class:`ParallelRunner` fans a batch of :class:`~repro.runner.spec.RunSpec`
points across a pool of worker processes (each point builds its own
:class:`~repro.core.machine.Machine`, so points are fully independent)
and returns results in *input order* regardless of completion order —
the sweep output is deterministic for any ``--jobs`` value.

Failure model
-------------
* Driver exceptions and per-run timeouts are deterministic in this
  simulator, so they are **not** retried; they surface as
  :class:`RunFailure` (and :class:`RunnerError` from :meth:`run`).
* A worker-process *crash* (segfault, OOM kill, ``os._exit``) tears down
  the pool; the runner rebuilds it and resubmits every unfinished point,
  charging each one attempt, until ``retries`` extra attempts are spent.
* Per-run timeouts are enforced inside the worker with ``SIGALRM`` where
  available, backed by a parent-side *watchdog* on the pool's result
  wait: a task still running past ``timeout * 1.25 + 1`` seconds has its
  pool terminated and fails with a timeout (not retried — timeouts are
  deterministic here).  The watchdog is what enforces timeouts on
  platforms without ``SIGALRM`` (no POSIX signals, or spawn-started
  workers where the interpreter embedding masks signal delivery);
  before it existed such runs could hold a pool slot forever.
* Sharded specs (``spec.shards > 1``) always execute in the calling
  process — each one manages its own worker-process group, and nesting
  that inside a pool worker would oversubscribe the host.

With ``jobs=1`` everything executes serially in the calling process —
no pool, no pickling — which is the determinism-test path and the
default for library callers.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

from repro.runner.cache import ResultCache
from repro.runner.spec import RunRecord, RunSpec, execute_spec
from repro.stats.runner import PointRecord, ProgressHook, RunnerStats


class RunTimeoutError(Exception):
    """A single run exceeded the per-run timeout."""


class RunnerError(RuntimeError):
    """One or more sweep points failed; carries the failures."""

    def __init__(self, failures: list["RunFailure"]) -> None:
        preview = "; ".join(f"{f.spec.label()}: {f.error}"
                            for f in failures[:3])
        more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
        super().__init__(f"{len(failures)} run(s) failed: {preview}{more}")
        self.failures = failures


@dataclass
class RunFailure:
    """Terminal failure of one spec after all attempts."""

    spec: RunSpec
    error: str
    attempts: int = 1


Outcome = Union[RunRecord, RunFailure]


def _execute_with_timeout(spec: RunSpec, timeout: Optional[float]) -> RunRecord:
    """Run one spec, bounding wall time with an interval timer.

    ``REPRO_DISABLE_SIGALRM=1`` skips the timer (the pool watchdog is
    then the only enforcement) — set by tests to exercise the watchdog
    path on platforms that *do* have ``SIGALRM``.
    """
    if not timeout:
        return execute_spec(spec)
    if os.environ.get("REPRO_DISABLE_SIGALRM", "0") == "1":
        return execute_spec(spec)

    def _alarm(_signum, _frame):
        raise RunTimeoutError(f"run exceeded {timeout}s: {spec.label()}")

    try:
        previous = signal.signal(signal.SIGALRM, _alarm)
    except (ValueError, AttributeError):   # non-main thread / no SIGALRM
        return execute_spec(spec)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return execute_spec(spec)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _pool_worker(item: tuple[int, RunSpec, Optional[float]]):
    """Top-level worker body; returns outcomes as values, never raises.

    Only an abrupt process death can make this task "fail" from the
    pool's point of view — which is exactly the signal the crash-retry
    logic keys on.
    """
    uid, spec, timeout = item
    try:
        return uid, "ok", _execute_with_timeout(spec, timeout)
    except RunTimeoutError as err:
        return uid, "timeout", str(err)
    except Exception as err:
        detail = traceback.format_exception_only(type(err), err)[-1].strip()
        return uid, "error", detail


class ParallelRunner:
    """Executes sweeps; one instance accumulates stats across calls.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs serially in-process;
        ``None`` or ``0`` uses every available core.
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely.
    timeout:
        Per-run wall-clock bound in seconds (enforced in the worker).
    retries:
        Extra attempts granted to points whose worker process crashed.
    progress:
        Optional hook called as each point resolves (completion order).
    """

    def __init__(self, jobs: Optional[int] = 1,
                 cache: Optional[ResultCache] = None,
                 timeout: Optional[float] = None, retries: int = 2,
                 progress: Optional[ProgressHook] = None,
                 mp_context: Optional[str] = None) -> None:
        self.jobs = jobs or mp.cpu_count()
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self._mp_context = mp_context
        self.stats = RunnerStats()
        #: ``(label, snapshot)`` per resolved point whose driver ran with
        #: metrics enabled (cache hits included — snapshots ride inside
        #: the cached result), in resolution order; feeds --metrics-out
        self.metrics_points: list[tuple[str, dict]] = []

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> list[Any]:
        """Resolve every spec and return the driver results, in order.

        Raises :class:`RunnerError` if any point ultimately failed.
        """
        outcomes = self.run_outcomes(specs)
        failures = [o for o in outcomes if isinstance(o, RunFailure)]
        if failures:
            raise RunnerError(failures)
        return [o.result for o in outcomes]

    def run_one(self, spec: RunSpec) -> Any:
        return self.run([spec])[0]

    def run_outcomes(self, specs: Sequence[RunSpec]) -> list[Outcome]:
        """Like :meth:`run` but returns per-point outcomes, never raises."""
        t_start = time.perf_counter()
        specs = list(specs)
        outcomes: list[Optional[Outcome]] = [None] * len(specs)
        self._done = 0
        self._total = len(specs)

        # cache probe + within-batch dedupe (identical specs run once)
        index_groups: dict[str, list[int]] = {}
        order: list[str] = []
        for i, spec in enumerate(specs):
            if self.cache is not None:
                record = self.cache.load(spec)
                if record is not None:
                    outcomes[i] = record
                    self._note(spec, record=record, cached=True)
                    continue
            key = spec.canonical()
            if key not in index_groups:
                index_groups[key] = []
                order.append(key)
            index_groups[key].append(i)

        unique = [(key, specs[index_groups[key][0]]) for key in order]
        if unique:
            # sharded specs own a process group each: run them inline
            # regardless of --jobs (nesting them in pool workers would
            # oversubscribe the host and complicate crash recovery)
            inline = [(k, s) for k, s in unique if s.shards > 1]
            pooled = [(k, s) for k, s in unique if s.shards <= 1]
            resolved = self._run_serial(inline) if inline else {}
            if pooled:
                if self.jobs == 1:
                    resolved.update(self._run_serial(pooled))
                else:
                    resolved.update(self._run_pool(pooled))
            for key, (outcome, n_attempts) in resolved.items():
                if isinstance(outcome, RunRecord) and self.cache is not None:
                    self.cache.store(outcome)
                for j, i in enumerate(index_groups[key]):
                    outcomes[i] = outcome
                    if isinstance(outcome, RunFailure):
                        self._note(specs[i], failure=outcome)
                    else:
                        # duplicate indices share one execution
                        self._note(specs[i], record=outcome, cached=j > 0,
                                   attempts=n_attempts)

        self.stats.add_elapsed(time.perf_counter() - t_start)
        assert all(o is not None for o in outcomes)
        return outcomes          # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _note(self, spec: RunSpec, record: Optional[RunRecord] = None,
              cached: bool = False, failure: Optional[RunFailure] = None,
              attempts: int = 1) -> None:
        if failure is not None:
            point = PointRecord(label=spec.label(), cached=False,
                                wall_seconds=0.0, sim_events=0,
                                attempts=failure.attempts, failed=True)
        else:
            assert record is not None
            point = PointRecord(label=spec.label(), cached=cached,
                                wall_seconds=record.wall_seconds,
                                sim_events=record.sim_events,
                                attempts=attempts)
            snapshot = getattr(record.result, "metrics", None)
            if snapshot is not None:
                self.metrics_points.append((spec.label(), snapshot))
        self.stats.record(point)
        self._done += 1
        if self.progress is not None:
            self.progress(self._done, self._total, point)

    # ------------------------------------------------------------------
    def _run_serial(self, unique: list[tuple[str, RunSpec]],
                    ) -> dict[str, tuple[Outcome, int]]:
        resolved: dict[str, tuple[Outcome, int]] = {}
        for key, spec in unique:
            try:
                resolved[key] = (_execute_with_timeout(spec, self.timeout), 1)
            except Exception as err:
                detail = traceback.format_exception_only(
                    type(err), err)[-1].strip()
                resolved[key] = (RunFailure(spec=spec, error=detail), 1)
        return resolved

    def _run_pool(self, unique: list[tuple[str, RunSpec]],
                  ) -> dict[str, tuple[Outcome, int]]:
        method = self._mp_context or (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn")
        ctx = mp.get_context(method)
        max_attempts = 1 + max(0, self.retries)
        attempts = {uid: 0 for uid in range(len(unique))}
        resolved: dict[int, Outcome] = {}

        while len(resolved) < len(unique):
            todo = [uid for uid in attempts
                    if uid not in resolved and attempts[uid] < max_attempts]
            for uid, n in attempts.items():
                if uid not in resolved and n >= max_attempts:
                    resolved[uid] = RunFailure(
                        spec=unique[uid][1], attempts=n,
                        error="worker process crashed repeatedly")
            if not todo:
                break
            for uid in todo:
                attempts[uid] += 1
            workers = min(self.jobs, len(todo))
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=ctx) as pool:
                futures = {}
                for uid in todo:
                    try:
                        fut = pool.submit(
                            _pool_worker, (uid, unique[uid][1], self.timeout))
                    except Exception:
                        # pool already broke; unsubmitted uids stay
                        # unresolved and go into the next rebuild round
                        break
                    futures[fut] = uid
                self._drain_pool(pool, futures, unique, attempts, resolved)

        out: dict[str, tuple[Outcome, int]] = {}
        for uid, (key, _spec) in enumerate(unique):
            outcome = resolved[uid]
            if isinstance(outcome, RunFailure):
                outcome.attempts = attempts[uid]
            out[key] = (outcome, attempts[uid])
        return out

    def _drain_pool(self, pool, futures: dict, unique, attempts: dict,
                    resolved: dict) -> None:
        """Collect pool results, enforcing the per-run timeout from the
        parent (the watchdog) as well.

        The in-worker ``SIGALRM`` timer normally fires first and returns
        a clean per-run timeout without disturbing the pool.  If it
        cannot (no ``SIGALRM`` on the platform, or a worker wedged in C
        code), any task observed *running* for longer than
        ``timeout * 1.25 + 1`` seconds is failed as a timeout here and
        the pool's processes are terminated; tasks that were merely
        queued behind it stay unresolved and are resubmitted by the
        rebuild loop.  Timeout failures are terminal — deterministic
        runs time out again — so they are never retried.
        """
        grace = None if not self.timeout else self.timeout * 1.25 + 1.0
        deadlines: dict = {}
        pending = set(futures)
        while pending:
            done, pending = wait(pending,
                                 timeout=None if grace is None else 0.05)
            for fut in done:
                try:
                    uid, status, payload = fut.result()
                except Exception:
                    # BrokenProcessPool: a worker died. Remaining
                    # futures fail the same way; rebuild and resubmit
                    # everything still unresolved.
                    continue
                if status == "ok":
                    resolved[uid] = payload
                else:
                    resolved[uid] = RunFailure(
                        spec=unique[uid][1], error=payload,
                        attempts=attempts[uid])
            if grace is None:
                continue
            now = time.monotonic()
            for fut in pending:
                if fut not in deadlines and fut.running():
                    deadlines[fut] = now + grace
            expired = [fut for fut in pending
                       if fut in deadlines and now >= deadlines[fut]]
            if expired:
                for fut in expired:
                    uid = futures[fut]
                    resolved[uid] = RunFailure(
                        spec=unique[uid][1],
                        error=(f"run exceeded {self.timeout}s "
                               "(pool watchdog): "
                               f"{unique[uid][1].label()}"),
                        attempts=attempts[uid])
                for proc in list(pool._processes.values()):
                    proc.terminate()
                return
