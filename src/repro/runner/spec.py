"""Run specifications — the unit of work the parallel runner schedules.

A :class:`RunSpec` is an immutable, picklable, *canonically serializable*
description of one simulator run: a registered ``kind`` (which names a
driver function such as :func:`repro.workloads.barrier.run_barrier_workload`)
plus its keyword arguments.  Canonical serialization is what makes the
content-addressed result cache sound: two specs with the same semantics
always produce the same JSON, regardless of keyword order or enum
identity.

New run kinds (e.g. application kernels) register a driver with
:func:`register_kind`; the executor workers resolve kinds through the
same registry, so a kind registered before the pool is forked is
runnable in every worker.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from repro.config.mechanism import Mechanism

#: kind name -> driver callable taking the spec's kwargs
_KIND_REGISTRY: dict[str, Callable[..., Any]] = {}
#: kinds whose driver accepts ``warm_cache`` (snapshot warm-start)
_WARMABLE_KINDS: set[str] = set()


def register_kind(name: str, fn: Callable[..., Any],
                  warmable: bool = False) -> None:
    """Register (or replace) the driver function for a run kind.

    ``warmable`` marks drivers accepting a ``warm_cache`` keyword:
    :func:`execute_spec` then routes them through the process-local
    snapshot warm-start pool, so a sweep revisiting a machine shape
    restores from a checkpoint instead of rebuilding and re-warming.
    The warm path is fingerprint-identical to a cold run (pinned by the
    determinism-parity suite), so cached results are unaffected.
    """
    _KIND_REGISTRY[name] = fn
    if warmable:
        _WARMABLE_KINDS.add(name)
    else:
        _WARMABLE_KINDS.discard(name)


#: lazily-built per-process warm cache (one per executor worker); set
#: REPRO_WARM_START=0 to force every run to build its machine fresh
_WARM_CACHE: Any = None


def _process_warm_cache():
    global _WARM_CACHE
    if os.environ.get("REPRO_WARM_START", "1") == "0":
        return None
    if _WARM_CACHE is None:
        from repro.workloads.warm import WarmCache
        _WARM_CACHE = WarmCache()
    return _WARM_CACHE


def registered_kinds() -> tuple[str, ...]:
    return tuple(sorted(_KIND_REGISTRY))


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation point: ``kind`` + frozen kwargs."""

    kind: str
    #: sorted ``(name, value)`` pairs — hashable and order-independent
    params: tuple[tuple[str, Any], ...]
    #: execute across N shard worker processes (:mod:`repro.shard`).
    #: An execution detail, not semantics — sharded runs are cycle- and
    #: message-identical — so it is excluded from equality and from
    #: :meth:`canonical` (the cache key): a cached single-process result
    #: answers a sharded spec and vice versa.
    shards: int = field(default=1, compare=False)
    #: event-kernel backend (:mod:`repro.sim.backends`).  Like ``shards``
    #: this is an execution detail — every backend is parity-gated to
    #: byte-identical results — so it too stays out of equality and the
    #: cache key: a cached ``reference`` result answers an ``accel`` spec
    #: and vice versa.  ``None`` defers to $REPRO_KERNEL_BACKEND.
    backend: Optional[str] = field(default=None, compare=False)

    @classmethod
    def make(cls, kind: str, **params: Any) -> "RunSpec":
        return cls(kind=kind, params=tuple(sorted(params.items())))

    @classmethod
    def barrier(cls, n_processors: int, mechanism: Mechanism,
                episodes: int = 4, warmup_episodes: int = 1,
                tree_branching: Optional[int] = None, naive: bool = False,
                home_node: int = 0, metrics: bool = False,
                metrics_interval: int = 0, shards: int = 1,
                backend: Optional[str] = None) -> "RunSpec":
        """A :func:`~repro.workloads.barrier.run_barrier_workload` point.

        Metrics parameters enter the spec (and hence the cache key) only
        when enabled, so metered and unmetered sweeps cache separately
        and pre-existing cache entries keep their keys.  ``shards > 1``
        partitions the run across worker processes (:mod:`repro.shard`);
        since sharded results are cycle- and message-identical to
        single-process, the parameter stays *out* of the cache key — a
        cached single-process result answers a sharded spec and vice
        versa (``events_dispatched``, a host-side metric, may differ).
        """
        params = dict(n_processors=n_processors, mechanism=mechanism,
                      episodes=episodes, warmup_episodes=warmup_episodes,
                      tree_branching=tree_branching, naive=naive,
                      home_node=home_node)
        if metrics:
            params["metrics"] = True
            if metrics_interval:
                params["metrics_interval"] = metrics_interval
        spec = cls.make("barrier", **params)
        if shards > 1:
            spec = replace(spec, shards=shards)
        if backend is not None:
            spec = replace(spec, backend=backend)
        return spec

    @classmethod
    def lock(cls, n_processors: int, mechanism: Mechanism,
             lock_type: str = "ticket", acquisitions_per_cpu: int = 4,
             warmup_per_cpu: int = 1, home_node: int = 0,
             metrics: bool = False,
             metrics_interval: int = 0, shards: int = 1,
             backend: Optional[str] = None) -> "RunSpec":
        """A :func:`~repro.workloads.locks.run_lock_workload` point."""
        params = dict(n_processors=n_processors, mechanism=mechanism,
                      lock_type=lock_type,
                      acquisitions_per_cpu=acquisitions_per_cpu,
                      warmup_per_cpu=warmup_per_cpu, home_node=home_node)
        if metrics:
            params["metrics"] = True
            if metrics_interval:
                params["metrics_interval"] = metrics_interval
        spec = cls.make("lock", **params)
        if shards > 1:
            spec = replace(spec, shards=shards)
        if backend is not None:
            spec = replace(spec, backend=backend)
        return spec

    @classmethod
    def qlock(cls, n_processors: int, mechanism: Mechanism,
              lock_type: str = "mcs", acquisitions_per_cpu: int = 4,
              warmup_per_cpu: int = 1, batch_threshold: Optional[int] = None,
              home_node: int = 0, metrics: bool = False,
              metrics_interval: int = 0, shards: int = 1,
              backend: Optional[str] = None) -> "RunSpec":
        """A :func:`~repro.workloads.qlocks.run_qlock_workload` point.

        ``batch_threshold`` (CNA only) enters the spec — and hence the
        cache key — only when explicitly set, so MCS/rw sweeps keep
        threshold-free canonical keys.
        """
        params = dict(n_processors=n_processors, mechanism=mechanism,
                      lock_type=lock_type,
                      acquisitions_per_cpu=acquisitions_per_cpu,
                      warmup_per_cpu=warmup_per_cpu, home_node=home_node)
        if batch_threshold is not None:
            params["batch_threshold"] = batch_threshold
        if metrics:
            params["metrics"] = True
            if metrics_interval:
                params["metrics_interval"] = metrics_interval
        spec = cls.make("qlock", **params)
        if shards > 1:
            spec = replace(spec, shards=shards)
        if backend is not None:
            spec = replace(spec, backend=backend)
        return spec

    @classmethod
    def fuzz(cls, n_processors: int, mechanism: Mechanism, workload: str,
             seed: int, max_extra: int, kinds: Optional[tuple] = None,
             reorder_window: int = 0,
             reorder_kinds: Optional[tuple] = None,
             episodes: int = 2, ops_per_cpu: int = 3,
             inject_bug: Optional[str] = None,
             backend: Optional[str] = None) -> "RunSpec":
        """A :func:`~repro.check.fuzz.run_fuzz_schedule` point.

        The kind filter enters the spec only when restricted, the
        relaxed-ordering universe only when ``reorder_window > 0``, and
        the bug injection only when armed, so the common all-kinds
        strict-FIFO clean sweep keeps short canonical keys.
        """
        params = dict(n_processors=n_processors, mechanism=mechanism,
                      workload=workload, seed=seed, max_extra=max_extra,
                      episodes=episodes, ops_per_cpu=ops_per_cpu)
        if kinds is not None:
            params["kinds"] = tuple(sorted(kinds))
        if reorder_window:
            params["reorder_window"] = reorder_window
            if reorder_kinds is not None:
                params["reorder_kinds"] = tuple(sorted(reorder_kinds))
        if inject_bug is not None:
            params["inject_bug"] = inject_bug
        spec = cls.make("fuzz", **params)
        if backend is not None:
            spec = replace(spec, backend=backend)
        return spec

    # ------------------------------------------------------------------
    @property
    def kwargs(self) -> dict[str, Any]:
        return dict(self.params)

    def canonical(self) -> str:
        """Stable JSON rendering — the cache-key input."""
        return json.dumps({"kind": self.kind, "params": self.kwargs},
                          sort_keys=True, default=_encode_value,
                          separators=(",", ":"))

    def label(self) -> str:
        """Short human label for progress lines."""
        kw = self.kwargs
        bits = [self.kind]
        if self.shards > 1:
            bits.append(f"x{self.shards}shards")
        if "n_processors" in kw:
            bits.append(f"P={kw['n_processors']}")
        mech = kw.get("mechanism")
        if isinstance(mech, Mechanism):
            bits.append(mech.value)
        if kw.get("lock_type"):
            bits.append(kw["lock_type"])
        if kw.get("tree_branching"):
            bits.append(f"b={kw['tree_branching']}")
        if kw.get("workload"):
            bits.append(kw["workload"])
        if "seed" in kw:
            bits.append(f"seed={kw['seed']}")
        return " ".join(bits)


def _encode_value(value: Any) -> Any:
    if isinstance(value, Mechanism):
        return {"__mechanism__": value.name}
    raise TypeError(
        f"RunSpec parameter {value!r} ({type(value).__name__}) is not "
        "canonically serializable; use int/float/str/bool/None/Mechanism")


@dataclass
class RunRecord:
    """What executing one spec produced, plus execution metadata."""

    spec: RunSpec
    result: Any
    #: simulator events the run dispatched (0 if the driver reports none)
    sim_events: int = 0
    #: wall-clock seconds the driver took, in whichever process ran it
    wall_seconds: float = 0.0
    schema: int = field(default=1)


def execute_spec(spec: RunSpec) -> RunRecord:
    """Execute ``spec`` in this process and wrap the outcome."""
    try:
        fn = _KIND_REGISTRY[spec.kind]
    except KeyError:
        raise KeyError(
            f"unknown run kind {spec.kind!r}; registered: "
            f"{registered_kinds()}") from None
    kwargs = spec.kwargs
    if spec.backend is not None:
        # execution detail like ``shards``: threaded to the driver (and
        # through it to every shard worker) but never into the cache key
        kwargs["backend"] = spec.backend
    t0 = time.perf_counter()
    if spec.shards > 1:
        from repro.shard.session import run_sharded
        result = run_sharded(spec.kind, kwargs, spec.shards)
    else:
        if spec.kind in _WARMABLE_KINDS:
            warm = _process_warm_cache()
            if warm is not None:
                kwargs["warm_cache"] = warm
        result = fn(**kwargs)
    wall = time.perf_counter() - t0
    if isinstance(result, dict):
        sim_events = result.get("events_dispatched", 0)
    else:
        sim_events = getattr(result, "events_dispatched", 0)
    return RunRecord(spec=spec, result=result,
                     sim_events=sim_events,
                     wall_seconds=wall)


def _register_builtin_kinds() -> None:
    from repro.check.fuzz import run_fuzz_schedule
    from repro.workloads.barrier import run_barrier_workload
    from repro.workloads.locks import run_lock_workload
    from repro.workloads.qlocks import run_qlock_workload
    register_kind("barrier", run_barrier_workload, warmable=True)
    register_kind("lock", run_lock_workload, warmable=True)
    register_kind("qlock", run_qlock_workload, warmable=True)
    register_kind("fuzz", run_fuzz_schedule)


_register_builtin_kinds()
