"""Content-addressed on-disk cache of simulation results.

Every cache entry is keyed by ``sha256(format-version | code-fingerprint
| spec.canonical())`` — re-running an experiment with an identical
configuration and identical simulator code is a disk read, while any
change to either recomputes.  Because the simulator is deterministic, a
cache hit is *exactly* the result a fresh run would produce, so tables
assembled from cached runs are byte-identical to freshly computed ones.

Entries are self-verifying: the pickled payload is stored behind a magic
tag and its own sha256 checksum, and the entry must contain the spec it
claims to answer.  A truncated, bit-flipped, or otherwise undecodable
entry is treated as a miss, deleted, and recomputed — never trusted.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.runner.fingerprint import code_fingerprint
from repro.runner.spec import RunRecord, RunSpec

#: bump when the on-disk entry layout changes
FORMAT_VERSION = 1
_MAGIC = b"RPRC\x01"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-runner``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-runner"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.corrupt}


@dataclass
class ResultCache:
    """Content-addressed store of :class:`RunRecord` pickles."""

    root: Path
    #: code-version component of every key; defaults to the live tree's
    fingerprint: str = field(default_factory=code_fingerprint)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------
    def key_for(self, spec: RunSpec) -> str:
        payload = f"v{FORMAT_VERSION}|{self.fingerprint}|{spec.canonical()}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    def load(self, spec: RunSpec) -> Optional[RunRecord]:
        """Return the cached record for ``spec``, or None.

        Any decoding failure — bad magic, checksum mismatch, unpicklable
        payload, or a record answering a different spec — counts the
        entry as corrupt, deletes it, and reports a miss.
        """
        path = self._path_for(self.key_for(spec))
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        record = self._decode(raw)
        if record is None or record.spec != spec:
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return record

    def store(self, record: RunRecord) -> Path:
        """Write ``record`` atomically; concurrent writers are safe."""
        path = self._path_for(self.key_for(record.spec))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    @staticmethod
    def _decode(raw: bytes) -> Optional[RunRecord]:
        if not raw.startswith(_MAGIC) or len(raw) < len(_MAGIC) + 32:
            return None
        digest = raw[len(_MAGIC):len(_MAGIC) + 32]
        payload = raw[len(_MAGIC) + 32:]
        if hashlib.sha256(payload).digest() != digest:
            return None
        try:
            record = pickle.loads(payload)
        except Exception:
            return None
        return record if isinstance(record, RunRecord) else None

    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
