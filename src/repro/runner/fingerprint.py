"""Code-version fingerprint for the result cache.

A cached simulator result is only valid for the code that produced it.
Rather than trusting git state (the working tree may be dirty) we hash
the *contents* of every ``repro`` source file; any edit to the simulator,
workloads, or runner invalidates every cached entry, while edits to
docs, tests, or benchmarks leave the cache warm.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional

_cached: Optional[str] = None


def package_root() -> Path:
    import repro
    return Path(repro.__file__).resolve().parent


def code_fingerprint(refresh: bool = False) -> str:
    """Hex digest over every ``repro/**/*.py`` file's path and content.

    The environment variable ``REPRO_CODE_FINGERPRINT`` overrides the
    computed value (used by tests and by CI jobs that want deliberate
    cache invalidation).
    """
    override = os.environ.get("REPRO_CODE_FINGERPRINT")
    if override:
        return override
    global _cached
    if _cached is not None and not refresh:
        return _cached
    root = package_root()
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _cached = digest.hexdigest()
    return _cached
