"""Parallel sweep runner: executor, run specs, and the result cache.

Typical use (this is what the CLI and the benchmark drivers do)::

    from repro.runner import ParallelRunner, ResultCache, RunSpec

    runner = ParallelRunner(jobs=4, cache=ResultCache(root=".cache"))
    specs = [RunSpec.barrier(n_processors=p, mechanism=m, episodes=3)
             for p in (4, 8, 16) for m in Mechanism]
    results = runner.run(specs)        # input order, cache-aware
    print(runner.stats.summary())

See ``docs/runner.md`` for the execution model, cache-key scheme, and
determinism guarantees.
"""

from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.executor import (
    ParallelRunner, RunFailure, RunnerError, RunTimeoutError,
)
from repro.runner.fingerprint import code_fingerprint
from repro.runner.spec import (
    RunRecord, RunSpec, execute_spec, register_kind, registered_kinds,
)

__all__ = [
    "ParallelRunner",
    "ResultCache",
    "RunFailure",
    "RunRecord",
    "RunSpec",
    "RunnerError",
    "RunTimeoutError",
    "code_fingerprint",
    "default_cache_dir",
    "execute_spec",
    "register_kind",
    "registered_kinds",
]
