"""System configuration (paper Table 1) and the mechanism taxonomy."""

from repro.config.mechanism import Mechanism
from repro.config.parameters import (
    AmuConfig,
    ActiveMessageConfig,
    CacheConfig,
    DramConfig,
    HubConfig,
    NetworkConfig,
    ProcessorConfig,
    SystemConfig,
)

__all__ = [
    "Mechanism",
    "SystemConfig",
    "ProcessorConfig",
    "CacheConfig",
    "DramConfig",
    "HubConfig",
    "NetworkConfig",
    "AmuConfig",
    "ActiveMessageConfig",
]
