"""The five synchronization mechanisms the paper compares.

Each mechanism is a different way to execute an atomic read-modify-write
on a shared synchronization variable (and, for AMO, a different wake-up
path).  The sync algorithms in :mod:`repro.sync` are parameterized by a
:class:`Mechanism` so the same barrier/lock source exercises all five
hardware options — the controlled comparison of the paper's Section 4.
"""

from __future__ import annotations

import enum


class Mechanism(enum.Enum):
    """Atomic-primitive implementation used by a synchronization algorithm.

    =========  ===========================================================
    member     paper's label / description
    =========  ===========================================================
    LLSC       "LL/SC" — load-linked/store-conditional retry loop
               (MIPS/Alpha/PowerPC style); the evaluation baseline.
    ATOMIC     "Atomic" — processor-centric atomic instruction; the
               line is fetched exclusively, the op executes at the
               requesting processor, no retry failures.
    ACTMSG     "ActMsg" — active message to the home node; the home
               node's *main processor* runs a software handler that
               performs the op, with invocation overhead, serialization
               and timeout/retransmission.
    MAO        "MAO" — Origin 2000 / T3E style memory-side atomic op:
               an uncached access to a special IO address; the home
               memory controller performs the op; no coherence
               integration (spin loads must bypass caches, so software
               spins on a *separate* coherent variable).
    AMO        "AMO" — the paper's Active Memory Operation: coherent
               memory-side atomic with fine-grained get/put and a test
               value that defers the update push until the result
               matches (the release point of a barrier).
    =========  ===========================================================
    """

    LLSC = "llsc"
    ATOMIC = "atomic"
    ACTMSG = "actmsg"
    MAO = "mao"
    AMO = "amo"

    @property
    def label(self) -> str:
        """Paper-style display label."""
        return _LABELS[self]

    @classmethod
    def from_name(cls, name: str) -> "Mechanism":
        """Parse a mechanism from a user-facing string (case-insensitive).

        Accepts both the enum value (``"llsc"``) and the paper label
        (``"LL/SC"``).
        """
        norm = name.strip().lower().replace("/", "").replace("-", "")
        for mech in cls:
            if norm in (mech.value, mech.label.lower().replace("/", "")):
                return mech
        raise ValueError(f"unknown mechanism {name!r}")


_LABELS = {
    Mechanism.LLSC: "LL/SC",
    Mechanism.ATOMIC: "Atomic",
    Mechanism.ACTMSG: "ActMsg",
    Mechanism.MAO: "MAO",
    Mechanism.AMO: "AMO",
}

#: Evaluation order used in the paper's tables.
TABLE_ORDER = [
    Mechanism.LLSC,
    Mechanism.ACTMSG,
    Mechanism.ATOMIC,
    Mechanism.MAO,
    Mechanism.AMO,
]
