"""System configuration dataclasses mirroring the paper's Table 1.

All latencies are expressed in **CPU cycles** (2 GHz clock), matching how
the paper reports them ("DRAM 60 processor cycles latency", "Network 100
processor cycles latency per hop").  The hub runs at 500 MHz, i.e. one hub
cycle is four CPU cycles; hub-side occupancies are specified in hub cycles
and converted via :attr:`HubConfig.cpu_cycles_per_hub_cycle`.

The default constructions reproduce Table 1:

=============  =======================================================
Parameter      Value
=============  =======================================================
Processor      4-issue, 48-entry active list, 2 GHz
L1 I-cache     2-way, 32 KB, 64 B lines, 1-cycle latency
L1 D-cache     2-way, 32 KB, 32 B lines, 2-cycle latency
L2 cache       4-way, 2 MB, 128 B lines, 10-cycle latency
System bus     16 B CPU→system, 8 B system→CPU, 16 outstanding misses
DRAM           16 16-bit-data DDR channels, 60-cycle latency
Hub clock      500 MHz
Network        100 CPU cycles per hop, radix-8 fat tree, 32 B packets
=============  =======================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProcessorConfig:
    """Main processor model parameters.

    The simulator is transaction-level, so issue width and active-list
    depth appear only through :attr:`op_overhead_cycles`, the fixed cost
    charged for issuing one synchronization-related memory operation
    (address generation + LSQ traversal + retire).
    """

    clock_ghz: float = 2.0
    issue_width: int = 4
    active_list_entries: int = 48
    #: fixed per-operation issue/retire overhead, CPU cycles
    op_overhead_cycles: int = 4
    #: cycles of backoff between LL/SC retry attempts (software loop body)
    llsc_retry_penalty_cycles: int = 30
    #: cap on the randomized exponential LL/SC retry backoff; deep caps
    #: are what portable LL/SC loops ship (and what keeps the naive
    #: barrier coding livelock-free under spinner interference)
    llsc_backoff_cap_cycles: int = 4096


@dataclass(frozen=True)
class CacheConfig:
    """One cache level (size/associativity/line/latency)."""

    size_bytes: int
    ways: int
    line_bytes: int
    latency_cycles: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @staticmethod
    def l1d_default() -> "CacheConfig":
        return CacheConfig(size_bytes=32 * 1024, ways=2, line_bytes=32,
                           latency_cycles=2)

    @staticmethod
    def l2_default() -> "CacheConfig":
        return CacheConfig(size_bytes=2 * 1024 * 1024, ways=4,
                           line_bytes=128, latency_cycles=10)


@dataclass(frozen=True)
class DramConfig:
    """DDR DRAM backend: 16 channels, 60-CPU-cycle access latency.

    ``occupancy_cycles`` is how long one line-sized access keeps its
    channel group busy (serialization under a read storm at the home
    node — a first-order effect for the MAO-vs-AMO wake-up comparison).
    ``word_occupancy_cycles`` is the same for a word-grained access
    (AMU fill/writeback, fine-grained put to memory).
    """

    latency_cycles: int = 60
    channels: int = 16
    occupancy_cycles: int = 40
    word_occupancy_cycles: int = 4


@dataclass(frozen=True)
class HubConfig:
    """The Hub: processor interface, directory, MC, NI and AMU on one die.

    Occupancies are in *hub* cycles (500 MHz).  The directory engine
    serializes transactions to the same line; the egress port serializes
    outbound message injection (which is what makes an N-way invalidation
    or update fan-out cost O(N)).
    """

    clock_mhz: int = 500
    cpu_clock_mhz: int = 2000
    #: directory lookup + state update per transaction, hub cycles
    directory_occupancy_hub_cycles: int = 4
    #: per-message egress injection cost, hub cycles
    egress_occupancy_hub_cycles: int = 2
    #: per-message ingress demux cost, hub cycles
    ingress_occupancy_hub_cycles: int = 1
    #: egress cost of a WORD_UPDATE push, hub cycles — update packets are
    #: pre-formed by the put engine and streamed off the sharer vector,
    #: cheaper to inject than demand-generated transaction packets
    update_egress_hub_cycles: int = 1

    @property
    def cpu_cycles_per_hub_cycle(self) -> int:
        return self.cpu_clock_mhz // self.clock_mhz

    def hub_to_cpu(self, hub_cycles: int) -> int:
        """Convert hub cycles to CPU cycles."""
        return hub_cycles * self.cpu_cycles_per_hub_cycle


@dataclass(frozen=True)
class NetworkConfig:
    """NUMALink-4-like radix-8 fat tree.

    The paper models 50 ns per hop (100 CPU cycles at 2 GHz) and a 32-byte
    minimum packet.  ``local_latency_cycles`` is the on-die crossbar cost
    for a processor to reach its own hub.
    """

    hop_latency_cycles: int = 100
    router_radix: int = 8
    min_packet_bytes: int = 32
    header_bytes: int = 16
    local_latency_cycles: int = 16
    #: hardware multicast for update pushes (paper footnote 2: "AMO
    #: performance would be even higher if the network supported such
    #: operations").  When enabled, a word-update fan-out occupies the
    #: home egress port once instead of once per destination; the
    #: per-destination packets (and their traffic) still exist.
    multicast_updates: bool = False
    #: optional higher-fidelity mode: serialize packets on each node's
    #: up/down links at ``link_bandwidth_bytes_per_cycle``.  Off by
    #: default — the paper's effects are endpoint-serialization driven,
    #: and the calibration in EXPERIMENTS.md was done without it; the
    #: link-contention ablation bench quantifies the difference.
    model_link_contention: bool = False
    #: NUMALink-4-class link: ~3.2 GB/s at a 2 GHz CPU clock
    link_bandwidth_bytes_per_cycle: float = 1.6
    #: highest-fidelity mode: reserve *every* directed link on a
    #: packet's fat-tree path (store-and-forward per hop), so flows
    #: contend at shared routers, not just at the endpoints.  Implies
    #: the same bandwidth figure per link.  Supersedes
    #: ``model_link_contention`` when set.
    model_router_contention: bool = False


@dataclass(frozen=True)
class AmuConfig:
    """Active Memory Unit parameters (paper §3.1).

    An AMO that hits in the AMU cache completes in two (hub) cycles; an
    N-word AMU cache supports N concurrently-active synchronization
    variables without touching DRAM.
    """

    cache_words: int = 8
    op_latency_hub_cycles: int = 2
    #: extra dispatch cost per queued request (READY handshake), hub cycles
    dispatch_hub_cycles: int = 1
    #: when False the AMU cache is bypassed and every AMO reads/writes DRAM
    #: (ablation of the paper's §3.1 coalescing cache)
    cache_enabled: bool = True


@dataclass(frozen=True)
class ActiveMessageConfig:
    """Software active-message layer on the home node's main processor.

    The paper attributes ActMsg's limited gains to handler *invocation*
    overhead dwarfing the handler body, and its traffic blow-up (Fig. 7)
    to timeouts and retransmissions under contention.
    """

    #: interrupt/trap + dispatch to user-level handler, CPU cycles
    invocation_overhead_cycles: int = 350
    #: handler body for a fetch-and-add style op, CPU cycles
    handler_body_cycles: int = 40
    #: requester-side timeout before retransmitting, CPU cycles
    timeout_cycles: int = 12_000
    #: hard cap on retransmissions per logical message
    max_retransmits: int = 16


@dataclass(frozen=True)
class SystemConfig:
    """Complete machine description; the root object everything reads.

    Use :meth:`table1` for the paper's exact configuration at a given
    processor count.  Processor counts must be even multiples of
    ``cpus_per_node`` (the paper's smallest configuration is 4 CPUs =
    two nodes).
    """

    n_processors: int = 4
    cpus_per_node: int = 2
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    l1: CacheConfig = field(default_factory=CacheConfig.l1d_default)
    l2: CacheConfig = field(default_factory=CacheConfig.l2_default)
    dram: DramConfig = field(default_factory=DramConfig)
    hub: HubConfig = field(default_factory=HubConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    amu: AmuConfig = field(default_factory=AmuConfig)
    actmsg: ActiveMessageConfig = field(default_factory=ActiveMessageConfig)
    #: bytes per machine word (all sync variables are one word)
    word_bytes: int = 8
    #: event-kernel backend name (see :mod:`repro.sim.backends`);
    #: ``None`` defers to $REPRO_KERNEL_BACKEND, then ``reference``.
    #: Every backend produces byte-identical results, so this never
    #: enters a result cache key — but it *is* part of this (frozen,
    #: hashable) config, so warm-start pools keyed by config stay
    #: separated per backend.
    kernel_backend: str | None = None

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ValueError("need at least one processor")
        if self.n_processors % self.cpus_per_node:
            raise ValueError(
                f"{self.n_processors} processors not divisible by "
                f"{self.cpus_per_node} CPUs/node"
            )
        if self.l2.line_bytes % self.word_bytes:
            raise ValueError("L2 line must hold a whole number of words")

    @property
    def n_nodes(self) -> int:
        return self.n_processors // self.cpus_per_node

    @property
    def line_bytes(self) -> int:
        """Coherence granularity — the L2 line size (128 B)."""
        return self.l2.line_bytes

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // self.word_bytes

    @staticmethod
    def table1(n_processors: int = 4, **overrides) -> "SystemConfig":
        """The paper's Table 1 configuration at ``n_processors`` CPUs.

        ``overrides`` replace top-level fields (e.g. ``amu=...`` for
        ablations).
        """
        return SystemConfig(n_processors=n_processors, **overrides)

    def replace(self, **changes) -> "SystemConfig":
        """Functional update (dataclasses.replace passthrough)."""
        return dataclasses.replace(self, **changes)
