/* Compiled ``accel`` event core — a C implementation of the kernel
 * contract defined by repro.sim.kernel.Simulator.
 *
 * The semantics (two-tier queue, same-cycle FIFO dispatch ring,
 * delivery-phase (src, seq) ordering, flattened resume trampoline,
 * error messages) are replicated exactly; the pure-Python module
 * repro/sim/backends/accel_py.py is the executable specification and
 * automatic fallback when this extension is not built.  Parity is
 * enforced byte-identically by tools/capture_parity.py --verify
 * --backend accel and by the backend-conformance test suite.
 *
 * What the C restructuring buys over the reference loop:
 *  - the dispatch ring is a C circular buffer of (fn, args) tuples (a
 *    small `_ring` view object keeps the external append/__bool__
 *    contract for the primitives);
 *  - future timestamps live in a C int64 binary heap; buckets and the
 *    delivery phase stay Python lists inside dicts, driven via the C
 *    API (no interpreter dispatch on the hot path);
 *  - ``sim._resume`` is one stable bound callable; the run loop
 *    pointer-compares each event's callable against it and runs the
 *    resume trampoline inline — PyIter_Send drives the generator, so a
 *    normal resume never materializes a StopIteration;
 *  - Timeout arming is type-specialized inside the trampoline.
 *
 * Python Process/Timeout/primitives objects are shared with the
 * reference backend (imported at module init), so model code and the
 * primitives module need no backend awareness at all.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>   /* T_OBJECT_EX / READONLY member flags */
#include <stddef.h>

/* ------------------------------------------------------------------ */
/* module-level handles resolved at import time                        */
/* ------------------------------------------------------------------ */

static PyObject *g_SimulationError;   /* repro.sim.kernel.SimulationError */
static PyObject *g_Process;           /* repro.sim.process.Process        */
static PyTypeObject *g_ProcessType;
static PyTypeObject *g_TimeoutType;   /* repro.sim.primitives.Timeout     */
static PyTypeObject *g_WaitType, *g_GateWaitType, *g_AcquireType,
    *g_QueueGetType, *g_JoinType;
static PyTypeObject *g_SignalType, *g_GateType, *g_ResourceType,
    *g_FifoQueueType;
static PyObject *g_empty_str, *g_one;

/* interned attribute names */
static PyObject *s_done, *s_gen, *s_stack, *s_rn, *s_finish, *s_fail,
    *s_arm, *s_throw, *s_name, *s_result, *s_delay, *s_qualname, *s_value,
    *s_append, *s_popleft, *s_dunder_name;

/* --------------------------------------------------------------------
 * Slot-offset specialization.
 *
 * Process and the waitable primitives are plain Python classes with
 * __slots__ shared verbatim with the reference backend.  Their slot
 * descriptors expose fixed struct offsets, so the trampoline can read
 * and write e.g. ``proc.gen`` or ``resource._busy`` as one pointer
 * dereference instead of a descriptor dispatch — and can replicate the
 * whole body of the hot ``_arm``/``_finish`` methods without entering
 * the interpreter.  Resolution happens once at import; if any slot is
 * missing (the Python classes were refactored), ``g_fast`` stays 0 and
 * every access falls back to the generic attribute protocol, keeping
 * behaviour — if not speed — intact.
 * ------------------------------------------------------------------ */

static int g_fast = 0;

/* Process */
static Py_ssize_t off_p_gen, off_p_stack, off_p_name, off_p_sim,
    off_p_done, off_p_result, off_p_error, off_p_waiters, off_p_rn;
/* JoinCmd / Wait / GateWait / Acquire / QueueGet (the yielded cmds) */
static Py_ssize_t off_j_target, off_w_signal, off_gw_gate, off_a_resource,
    off_qg_queue;
/* Signal / Gate / Resource / FifoQueue (the cmds' referents) */
static Py_ssize_t off_s_waiters, off_s_fired, off_s_value;
static Py_ssize_t off_g_waiters, off_g_open, off_g_value;
static Py_ssize_t off_r_busy, off_r_queue, off_r_grants, off_r_acquired,
    off_r_sim;
static Py_ssize_t off_fq_items, off_fq_getters;

#define SLOT(obj, off) (*(PyObject **)((char *)(obj) + (off)))

/* truth of a slot value that is almost always a bool singleton */
static inline int
slot_truth(PyObject *v)
{
    if (v == Py_True)
        return 1;
    if (v == Py_False || v == NULL)
        return 0;
    return PyObject_IsTrue(v);
}

/* store an owned reference into a slot, dropping the old value */
static inline void
slot_store(PyObject *obj, Py_ssize_t off, PyObject *value_owned)
{
    PyObject *old = SLOT(obj, off);
    SLOT(obj, off) = value_owned;
    Py_XDECREF(old);
}

static Py_ssize_t
slot_off(PyObject *cls, const char *name)
{
    PyObject *descr = PyObject_GetAttrString(cls, name);
    if (descr == NULL) {
        PyErr_Clear();
        return -1;
    }
    Py_ssize_t off = -1;
    if (Py_IS_TYPE(descr, &PyMemberDescr_Type)) {
        PyMemberDef *m = ((PyMemberDescrObject *)descr)->d_member;
        if (m->type == T_OBJECT_EX)
            off = m->offset;
    }
    Py_DECREF(descr);
    return off;
}

/* ------------------------------------------------------------------ */
/* EventRing: the same-cycle FIFO dispatch ring                        */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject **buf;
    Py_ssize_t head;   /* index of the oldest element */
    Py_ssize_t len;
    Py_ssize_t cap;    /* power of two */
} RingObject;

static PyTypeObject Ring_Type;

static int
ring_grow(RingObject *r)
{
    Py_ssize_t newcap = r->cap ? r->cap * 2 : 64;
    PyObject **nb = PyMem_New(PyObject *, newcap);
    if (nb == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    for (Py_ssize_t i = 0; i < r->len; i++)
        nb[i] = r->buf[(r->head + i) & (r->cap - 1)];
    PyMem_Free(r->buf);
    r->buf = nb;
    r->head = 0;
    r->cap = newcap;
    return 0;
}

/* steals no reference: increfs ev */
static int
ring_push(RingObject *r, PyObject *ev)
{
    if (r->len == r->cap && ring_grow(r) < 0)
        return -1;
    r->buf[(r->head + r->len) & (r->cap - 1)] = Py_NewRef(ev);
    r->len++;
    return 0;
}

/* returns an owned reference; caller must ensure len > 0 */
static PyObject *
ring_popleft(RingObject *r)
{
    PyObject *ev = r->buf[r->head];
    r->head = (r->head + 1) & (r->cap - 1);
    r->len--;
    return ev;
}

static PyObject *
Ring_append(RingObject *r, PyObject *ev)
{
    if (ring_push(r, ev) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static Py_ssize_t
Ring_length(RingObject *r)
{
    return r->len;
}

static int
Ring_traverse(RingObject *r, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < r->len; i++)
        Py_VISIT(r->buf[(r->head + i) & (r->cap - 1)]);
    return 0;
}

static int
Ring_clear_impl(RingObject *r)
{
    for (Py_ssize_t i = 0; i < r->len; i++) {
        PyObject *ev = r->buf[(r->head + i) & (r->cap - 1)];
        r->buf[(r->head + i) & (r->cap - 1)] = NULL;
        Py_XDECREF(ev);
    }
    r->len = 0;
    r->head = 0;
    return 0;
}

static void
Ring_dealloc(RingObject *r)
{
    PyObject_GC_UnTrack(r);
    Ring_clear_impl(r);
    PyMem_Free(r->buf);
    Py_TYPE(r)->tp_free((PyObject *)r);
}

static PyMethodDef Ring_methods[] = {
    {"append", (PyCFunction)Ring_append, METH_O,
     "Append one (fn, args) event tuple."},
    {NULL, NULL, 0, NULL},
};

static PySequenceMethods Ring_as_sequence = {
    .sq_length = (lenfunc)Ring_length,
};

static PyTypeObject Ring_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim.backends._accel_core.EventRing",
    .tp_basicsize = sizeof(RingObject),
    .tp_dealloc = (destructor)Ring_dealloc,
    .tp_as_sequence = &Ring_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Same-cycle FIFO dispatch ring (C circular buffer).",
    .tp_traverse = (traverseproc)Ring_traverse,
    .tp_clear = (inquiry)Ring_clear_impl,
    .tp_methods = Ring_methods,
};

static RingObject *
ring_new(void)
{
    RingObject *r = PyObject_GC_New(RingObject, &Ring_Type);
    if (r == NULL)
        return NULL;
    r->buf = NULL;
    r->head = r->len = r->cap = 0;
    PyObject_GC_Track(r);
    return r;
}

/* ------------------------------------------------------------------ */
/* AccelSimulator                                                      */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    long long now;
    long long events_dispatched;
    char running;
    char trace;
    RingObject *ring;
    PyObject *buckets;     /* dict: when (int) -> list of events        */
    PyObject *phase;       /* dict: when (int) -> list of (key, event)  */
    PyObject *pool;        /* list of recycled bucket lists             */
    PyObject *trace_log;   /* list of (time, description)               */
    PyObject *active;      /* set of live processes                     */
    PyObject *resume_cb;   /* the one stable bound ``_resume`` callable */
    long long *heap;       /* min-heap of distinct future timestamps    */
    Py_ssize_t heap_len;
    Py_ssize_t heap_cap;
} SimObject;

static PyTypeObject Sim_Type;

/* ---- int64 binary heap ---- */

static int
heap_push(SimObject *s, long long when)
{
    if (s->heap_len == s->heap_cap) {
        Py_ssize_t newcap = s->heap_cap ? s->heap_cap * 2 : 64;
        long long *nh = PyMem_Resize(s->heap, long long, newcap);
        if (nh == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        s->heap = nh;
        s->heap_cap = newcap;
    }
    Py_ssize_t i = s->heap_len++;
    long long *h = s->heap;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (h[parent] <= when)
            break;
        h[i] = h[parent];
        i = parent;
    }
    h[i] = when;
    return 0;
}

static void
heap_pop(SimObject *s)
{
    long long *h = s->heap;
    Py_ssize_t n = --s->heap_len;
    if (n == 0)
        return;
    long long last = h[n];
    Py_ssize_t i = 0;
    for (;;) {
        Py_ssize_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && h[child + 1] < h[child])
            child++;
        if (last <= h[child])
            break;
        h[i] = h[child];
        i = child;
    }
    h[i] = last;
}

/* ---- list helpers ---- */

/* pop the last element of a list; returns owned ref or NULL (empty/err) */
static PyObject *
list_pop_last(PyObject *list)
{
    Py_ssize_t n = PyList_GET_SIZE(list);
    if (n == 0)
        return NULL;
    PyObject *item = Py_NewRef(PyList_GET_ITEM(list, n - 1));
    if (PyList_SetSlice(list, n - 1, n, NULL) < 0) {
        Py_DECREF(item);
        return NULL;
    }
    return item;
}

/* ---- future-event queue ---- */

/* append ev to the bucket at ``when``, creating it (pool-recycled) and
 * registering the timestamp on the heap if absent */
static int
push_future(SimObject *self, long long when, PyObject *ev)
{
    PyObject *when_obj = PyLong_FromLongLong(when);
    if (when_obj == NULL)
        return -1;
    PyObject *bucket = PyDict_GetItemWithError(self->buckets, when_obj);
    if (bucket != NULL) {
        int r = PyList_Append(bucket, ev);
        Py_DECREF(when_obj);
        return r;
    }
    if (PyErr_Occurred()) {
        Py_DECREF(when_obj);
        return -1;
    }
    bucket = list_pop_last(self->pool);
    if (bucket == NULL) {
        if (PyErr_Occurred()) {
            Py_DECREF(when_obj);
            return -1;
        }
        bucket = PyList_New(0);
        if (bucket == NULL) {
            Py_DECREF(when_obj);
            return -1;
        }
    }
    if (PyDict_SetItem(self->buckets, when_obj, bucket) < 0 ||
            heap_push(self, when) < 0 ||
            PyList_Append(bucket, ev) < 0) {
        Py_DECREF(bucket);
        Py_DECREF(when_obj);
        return -1;
    }
    Py_DECREF(bucket);
    Py_DECREF(when_obj);
    return 0;
}

/* ---- resume trampoline ---- */

/* append a "resume ``proc`` with ``value``" event to the ring.  A
 * None-valued wake-up reuses the process's interned ``_rn`` tuple, just
 * like the Python primitives do. */
static int
push_resume(SimObject *self, PyObject *proc, PyObject *value)
{
    if (value == Py_None && g_fast && Py_IS_TYPE(proc, g_ProcessType)) {
        PyObject *rn = SLOT(proc, off_p_rn);
        if (rn != NULL)
            return ring_push(self->ring, rn);
    }
    PyObject *args = PyTuple_Pack(2, proc, value);
    if (args == NULL)
        return -1;
    PyObject *ev = PyTuple_Pack(2, self->resume_cb, args);
    Py_DECREF(args);
    if (ev == NULL)
        return -1;
    int r = ring_push(self->ring, ev);
    Py_DECREF(ev);
    return r;
}

/* Process._finish: mark done, store the result, wake joiners */
static int
proc_finish(SimObject *self, PyObject *proc, PyObject *result)
{
    if (!(g_fast && Py_IS_TYPE(proc, g_ProcessType))) {
        PyObject *r = PyObject_CallMethodOneArg(proc, s_finish, result);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    slot_store(proc, off_p_done, Py_NewRef(Py_True));
    slot_store(proc, off_p_result, Py_NewRef(result));
    PyObject *waiters = SLOT(proc, off_p_waiters);
    if (waiters != NULL && PyList_CheckExact(waiters)
            && PyList_GET_SIZE(waiters) > 0) {
        PyObject *empty = PyList_New(0);
        if (empty == NULL)
            return -1;
        SLOT(proc, off_p_waiters) = empty;   /* we now own ``waiters`` */
        Py_ssize_t n = PyList_GET_SIZE(waiters);
        for (Py_ssize_t i = 0; i < n; i++) {
            if (push_resume(self, PyList_GET_ITEM(waiters, i), result) < 0) {
                Py_DECREF(waiters);
                return -1;
            }
        }
        Py_DECREF(waiters);
    }
    return 0;
}

/* Process._fail: mark done, record the error, abandon joiners */
static int
proc_fail(PyObject *proc, PyObject *error)
{
    if (!(g_fast && Py_IS_TYPE(proc, g_ProcessType))) {
        PyObject *r = PyObject_CallMethodOneArg(proc, s_fail, error);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    PyObject *empty = PyList_New(0);
    if (empty == NULL)
        return -1;
    slot_store(proc, off_p_done, Py_NewRef(Py_True));
    slot_store(proc, off_p_error, Py_NewRef(error));
    slot_store(proc, off_p_waiters, empty);
    return 0;
}

static int
proc_set_gen(PyObject *proc, int fast, PyObject *newgen)
{
    if (fast) {
        slot_store(proc, off_p_gen, Py_NewRef(newgen));
        return 0;
    }
    return PyObject_SetAttr(proc, s_gen, newgen);
}

static int
resume_impl(SimObject *self, PyObject *proc, PyObject *value_in,
            PyObject *exc_in)
{
    int fast = g_fast && Py_IS_TYPE(proc, g_ProcessType);
    PyObject *gen, *stack;
    if (fast) {
        int is_done = slot_truth(SLOT(proc, off_p_done));
        if (is_done < 0)
            return -1;
        if (is_done)
            return 0;
        gen = Py_XNewRef(SLOT(proc, off_p_gen));
        stack = Py_XNewRef(SLOT(proc, off_p_stack));
        if (gen == NULL || stack == NULL) {
            Py_XDECREF(gen);
            Py_XDECREF(stack);
            PyErr_Format(PyExc_AttributeError,
                         "process %R has unset gen/stack slots", proc);
            return -1;
        }
    }
    else {
        PyObject *done = PyObject_GetAttr(proc, s_done);
        if (done == NULL)
            return -1;
        int is_done = PyObject_IsTrue(done);
        Py_DECREF(done);
        if (is_done < 0)
            return -1;
        if (is_done)
            return 0;
        gen = PyObject_GetAttr(proc, s_gen);
        if (gen == NULL)
            return -1;
        stack = PyObject_GetAttr(proc, s_stack);
        if (stack == NULL) {
            Py_DECREF(gen);
            return -1;
        }
    }
    PyObject *value = Py_NewRef(value_in);
    PyObject *exc = (exc_in != NULL && exc_in != Py_None)
        ? Py_NewRef(exc_in) : NULL;
    int retcode = -1;

    for (;;) {
        PyObject *cmd = NULL;
        PyObject *retval = NULL;   /* owned iff the generator returned */
        int finished = 0;

        if (exc != NULL) {
            PyObject *res = PyObject_CallMethodOneArg(gen, s_throw, exc);
            Py_CLEAR(exc);
            if (res != NULL) {
                cmd = res;
            }
            else if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
                PyObject *t, *v, *tb;
                PyErr_Fetch(&t, &v, &tb);
                PyErr_NormalizeException(&t, &v, &tb);
                retval = v ? PyObject_GetAttr(v, s_value) : Py_NewRef(Py_None);
                Py_XDECREF(t);
                Py_XDECREF(v);
                Py_XDECREF(tb);
                if (retval == NULL)
                    goto bail;
                finished = 1;
            }
            /* other exceptions: handled by the !cmd branch below */
        }
        else {
            PyObject *res;
            PySendResult sr = PyIter_Send(gen, value, &res);
            if (sr == PYGEN_NEXT) {
                cmd = res;
            }
            else if (sr == PYGEN_RETURN) {
                retval = res;
                finished = 1;
            }
            /* PYGEN_ERROR: handled below */
        }

        if (finished) {
            PyObject *caller = list_pop_last(stack);
            if (caller != NULL) {
                /* inner coroutine returned: resume its caller inline */
                if (proc_set_gen(proc, fast, caller) < 0) {
                    Py_DECREF(caller);
                    Py_DECREF(retval);
                    goto bail;
                }
                Py_SETREF(gen, caller);
                Py_SETREF(value, retval);
                continue;
            }
            if (PyErr_Occurred()) {
                Py_DECREF(retval);
                goto bail;
            }
            int fr = proc_finish(self, proc, retval);
            Py_DECREF(retval);
            if (fr < 0)
                goto bail;
            if (PySet_Discard(self->active, proc) < 0)
                goto bail;
            retcode = 0;
            goto bail;
        }

        if (cmd == NULL) {
            /* the generator raised: propagate into the caller (its
             * try/finally must run) or fail the process */
            PyObject *t, *v, *tb;
            PyErr_Fetch(&t, &v, &tb);
            PyErr_NormalizeException(&t, &v, &tb);
            if (tb != NULL && v != NULL)
                PyException_SetTraceback(v, tb);
            PyObject *caller = list_pop_last(stack);
            if (caller != NULL) {
                if (proc_set_gen(proc, fast, caller) < 0) {
                    Py_DECREF(caller);
                    Py_XDECREF(t);
                    Py_XDECREF(v);
                    Py_XDECREF(tb);
                    goto bail;
                }
                Py_SETREF(gen, caller);
                exc = v ? v : Py_NewRef(Py_None);
                Py_XDECREF(t);
                Py_XDECREF(tb);
                continue;
            }
            if (PyErr_Occurred()) {   /* list_pop_last failed */
                Py_XDECREF(t);
                Py_XDECREF(v);
                Py_XDECREF(tb);
                goto bail;
            }
            if (proc_fail(proc, v ? v : Py_None) < 0) {
                Py_XDECREF(t);
                Py_XDECREF(v);
                Py_XDECREF(tb);
                goto bail;
            }
            (void)PySet_Discard(self->active, proc);
            PyErr_Restore(t, v, tb);   /* re-raise at top level */
            goto bail;
        }

        /* the generator yielded ``cmd`` */
        if (Py_IS_TYPE(cmd, &PyGen_Type)) {
            /* sub-call: push the caller, drive the inner generator */
            if (PyList_Append(stack, gen) < 0 ||
                    proc_set_gen(proc, fast, cmd) < 0) {
                Py_DECREF(cmd);
                goto bail;
            }
            Py_SETREF(gen, cmd);
            Py_SETREF(value, Py_NewRef(Py_None));
            continue;
        }
        if (Py_IS_TYPE(cmd, g_TimeoutType)) {
            /* inlined Timeout._arm */
            PyObject *delay = PyObject_GetAttr(cmd, s_delay);
            if (delay == NULL) {
                Py_DECREF(cmd);
                goto bail;
            }
            if (PyLong_CheckExact(delay)) {
                int overflow = 0;
                long long d = PyLong_AsLongLongAndOverflow(delay, &overflow);
                if (d == -1 && !overflow && PyErr_Occurred()) {
                    Py_DECREF(delay);
                    Py_DECREF(cmd);
                    goto bail;
                }
                if (!overflow && d >= 0) {
                    PyObject *rn = fast ? Py_XNewRef(SLOT(proc, off_p_rn))
                                        : NULL;
                    if (rn == NULL)
                        rn = PyObject_GetAttr(proc, s_rn);
                    if (rn == NULL) {
                        Py_DECREF(delay);
                        Py_DECREF(cmd);
                        goto bail;
                    }
                    int r = (d > 0)
                        ? push_future(self, self->now + d, rn)
                        : ring_push(self->ring, rn);
                    Py_DECREF(rn);
                    Py_DECREF(delay);
                    Py_DECREF(cmd);
                    if (r < 0)
                        goto bail;
                    retcode = 0;
                    goto bail;
                }
                if (!overflow) {
                    /* negative delay: same error schedule() raises */
                    PyErr_Format(g_SimulationError,
                                 "negative delay %R", delay);
                    Py_DECREF(delay);
                    Py_DECREF(cmd);
                    goto bail;
                }
            }
            Py_DECREF(delay);
            /* non-int/overflowing delay: generic _arm path below */
        }
        if (g_fast) {
            /* Exact-type replicas of the hot ``_arm`` bodies.  Any
             * missing slot or unexpected referent type falls through to
             * the generic attribute-protocol path below, which runs the
             * Python ``_arm`` unchanged. */
            PyTypeObject *ct = Py_TYPE(cmd);
            if (ct == g_WaitType || ct == g_GateWaitType) {
                /* Wait/GateWait: already fired/open resumes now with the
                 * stored value, otherwise park on the waiter list */
                int is_wait = (ct == g_WaitType);
                PyObject *src = SLOT(cmd,
                                     is_wait ? off_w_signal : off_gw_gate);
                if (src != NULL &&
                        Py_IS_TYPE(src, is_wait ? g_SignalType : g_GateType)) {
                    PyObject *waiters = SLOT(
                        src, is_wait ? off_s_waiters : off_g_waiters);
                    PyObject *val = SLOT(
                        src, is_wait ? off_s_value : off_g_value);
                    if (waiters != NULL && PyList_CheckExact(waiters)
                            && val != NULL) {
                        int fired = slot_truth(SLOT(
                            src, is_wait ? off_s_fired : off_g_open));
                        if (fired < 0) {
                            Py_DECREF(cmd);
                            goto bail;
                        }
                        int r = fired ? push_resume(self, proc, val)
                                      : PyList_Append(waiters, proc);
                        Py_DECREF(cmd);
                        if (r < 0)
                            goto bail;
                        retcode = 0;
                        goto bail;
                    }
                }
            }
            else if (ct == g_JoinType) {
                PyObject *target = SLOT(cmd, off_j_target);
                if (target != NULL && Py_IS_TYPE(target, g_ProcessType)) {
                    PyObject *waiters = SLOT(target, off_p_waiters);
                    PyObject *res = SLOT(target, off_p_result);
                    if (waiters != NULL && PyList_CheckExact(waiters)
                            && res != NULL) {
                        int done = slot_truth(SLOT(target, off_p_done));
                        if (done < 0) {
                            Py_DECREF(cmd);
                            goto bail;
                        }
                        int r = done ? push_resume(self, proc, res)
                                     : PyList_Append(waiters, proc);
                        Py_DECREF(cmd);
                        if (r < 0)
                            goto bail;
                        retcode = 0;
                        goto bail;
                    }
                }
            }
            else if (ct == g_AcquireType) {
                PyObject *res = SLOT(cmd, off_a_resource);
                if (res != NULL && Py_IS_TYPE(res, g_ResourceType)) {
                    PyObject *grants = SLOT(res, off_r_grants);
                    PyObject *queue = SLOT(res, off_r_queue);
                    if (grants != NULL && queue != NULL) {
                        /* release() needs the owning sim back */
                        slot_store(res, off_r_sim,
                                   Py_NewRef((PyObject *)self));
                        int busy = slot_truth(SLOT(res, off_r_busy));
                        if (busy < 0) {
                            Py_DECREF(cmd);
                            goto bail;
                        }
                        if (!busy) {
                            PyObject *ng = PyNumber_Add(grants, g_one);
                            if (ng == NULL) {
                                Py_DECREF(cmd);
                                goto bail;
                            }
                            PyObject *acq = PyLong_FromLongLong(self->now);
                            if (acq == NULL) {
                                Py_DECREF(ng);
                                Py_DECREF(cmd);
                                goto bail;
                            }
                            slot_store(res, off_r_busy, Py_NewRef(Py_True));
                            slot_store(res, off_r_grants, ng);
                            slot_store(res, off_r_acquired, acq);
                            if (push_resume(self, proc, Py_None) < 0) {
                                Py_DECREF(cmd);
                                goto bail;
                            }
                        }
                        else {
                            PyObject *r = PyObject_CallMethodOneArg(
                                queue, s_append, proc);
                            if (r == NULL) {
                                Py_DECREF(cmd);
                                goto bail;
                            }
                            Py_DECREF(r);
                        }
                        Py_DECREF(cmd);
                        retcode = 0;
                        goto bail;
                    }
                }
            }
            else if (ct == g_QueueGetType) {
                PyObject *q = SLOT(cmd, off_qg_queue);
                if (q != NULL && Py_IS_TYPE(q, g_FifoQueueType)) {
                    PyObject *items = SLOT(q, off_fq_items);
                    PyObject *getters = SLOT(q, off_fq_getters);
                    if (items != NULL && getters != NULL) {
                        int nonempty = PyObject_IsTrue(items);
                        if (nonempty < 0) {
                            Py_DECREF(cmd);
                            goto bail;
                        }
                        if (nonempty) {
                            PyObject *item = PyObject_CallMethodNoArgs(
                                items, s_popleft);
                            if (item == NULL) {
                                Py_DECREF(cmd);
                                goto bail;
                            }
                            int r = push_resume(self, proc, item);
                            Py_DECREF(item);
                            if (r < 0) {
                                Py_DECREF(cmd);
                                goto bail;
                            }
                        }
                        else {
                            PyObject *r = PyObject_CallMethodOneArg(
                                getters, s_append, proc);
                            if (r == NULL) {
                                Py_DECREF(cmd);
                                goto bail;
                            }
                            Py_DECREF(r);
                        }
                        Py_DECREF(cmd);
                        retcode = 0;
                        goto bail;
                    }
                }
            }
        }
        {
            PyObject *r = PyObject_CallMethodObjArgs(
                cmd, s_arm, (PyObject *)self, proc, NULL);
            if (r == NULL) {
                if (PyErr_ExceptionMatches(PyExc_AttributeError)) {
                    PyErr_Clear();
                    PyObject *pname = PyObject_GetAttr(proc, s_name);
                    if (pname != NULL) {
                        PyErr_Format(
                            g_SimulationError,
                            "process %R yielded non-primitive %R; yield "
                            "Timeout/Wait/Acquire/... or use 'yield from' "
                            "for sub-coroutines", pname, cmd);
                        Py_DECREF(pname);
                    }
                }
                Py_DECREF(cmd);
                goto bail;
            }
            Py_DECREF(r);
            Py_DECREF(cmd);
            retcode = 0;
            goto bail;
        }
    }

bail:
    Py_XDECREF(exc);
    Py_DECREF(value);
    Py_DECREF(gen);
    Py_DECREF(stack);
    return retcode;
}

/* the Python-visible ``sim._resume(proc, value, exc=None)`` */
static PyObject *
sim_resume_py(PyObject *self_obj, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2 || nargs > 3) {
        PyErr_SetString(PyExc_TypeError,
                        "_resume expects (proc, value[, exc])");
        return NULL;
    }
    SimObject *self = (SimObject *)self_obj;
    PyObject *exc = (nargs == 3) ? args[2] : NULL;
    if (resume_impl(self, args[0], args[1], exc) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef resume_def = {
    "_resume", (PyCFunction)(void (*)(void))sim_resume_py,
    METH_FASTCALL,
    "Advance ``proc`` by one step, interpreting what it yields.",
};

/* ---- scheduling methods ---- */

static PyObject *
build_event(PyObject *fn, PyObject *const *rest, Py_ssize_t nrest)
{
    PyObject *args_t = PyTuple_New(nrest);
    if (args_t == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < nrest; i++)
        PyTuple_SET_ITEM(args_t, i, Py_NewRef(rest[i]));
    PyObject *ev = PyTuple_Pack(2, fn, args_t);
    Py_DECREF(args_t);
    return ev;
}

/* classify a delay/when operand relative to ``ref``:
 * 1 = greater, 0 = equal, -1 = less, -2 = error */
static int
cmp_to_ref(PyObject *obj, long long ref)
{
    if (PyLong_CheckExact(obj)) {
        int overflow = 0;
        long long v = PyLong_AsLongLongAndOverflow(obj, &overflow);
        if (v == -1 && !overflow && PyErr_Occurred())
            return -2;
        if (overflow)
            return overflow > 0 ? 1 : -1;
        return (v > ref) ? 1 : (v == ref) ? 0 : -1;
    }
    PyObject *ref_obj = PyLong_FromLongLong(ref);
    if (ref_obj == NULL)
        return -2;
    int eq = PyObject_RichCompareBool(obj, ref_obj, Py_EQ);
    if (eq < 0) {
        Py_DECREF(ref_obj);
        return -2;
    }
    if (eq) {
        Py_DECREF(ref_obj);
        return 0;
    }
    int gt = PyObject_RichCompareBool(obj, ref_obj, Py_GT);
    Py_DECREF(ref_obj);
    if (gt < 0)
        return -2;
    return gt ? 1 : -1;
}

static long long
as_longlong(PyObject *obj, int *err)
{
    *err = 0;
    if (PyLong_CheckExact(obj)) {
        long long v = PyLong_AsLongLong(obj);
        if (v == -1 && PyErr_Occurred())
            *err = 1;
        return v;
    }
    PyObject *as_int = PyNumber_Long(obj);
    if (as_int == NULL) {
        *err = 1;
        return -1;
    }
    long long v = PyLong_AsLongLong(as_int);
    Py_DECREF(as_int);
    if (v == -1 && PyErr_Occurred())
        *err = 1;
    return v;
}

static PyObject *
sim_schedule(SimObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule expects (delay, fn, *args)");
        return NULL;
    }
    PyObject *delay = args[0];
    int c = cmp_to_ref(delay, 0);
    if (c == -2)
        return NULL;
    if (c < 0) {
        PyErr_Format(g_SimulationError, "negative delay %R", delay);
        return NULL;
    }
    PyObject *ev = build_event(args[1], args + 2, nargs - 2);
    if (ev == NULL)
        return NULL;
    int r;
    if (c == 0) {
        r = ring_push(self->ring, ev);
    }
    else {
        int err;
        long long d = as_longlong(delay, &err);
        if (err) {
            Py_DECREF(ev);
            return NULL;
        }
        r = push_future(self, self->now + d, ev);
    }
    Py_DECREF(ev);
    if (r < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
sim_schedule_at(SimObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at expects (when, fn, *args)");
        return NULL;
    }
    PyObject *when = args[0];
    int c = cmp_to_ref(when, self->now);
    if (c == -2)
        return NULL;
    if (c < 0) {
        PyErr_Format(g_SimulationError,
                     "cannot schedule in the past (%S < %lld)",
                     when, self->now);
        return NULL;
    }
    PyObject *ev = build_event(args[1], args + 2, nargs - 2);
    if (ev == NULL)
        return NULL;
    int r;
    if (c == 0) {
        r = ring_push(self->ring, ev);
    }
    else {
        int err;
        long long w = as_longlong(when, &err);
        if (err) {
            Py_DECREF(ev);
            return NULL;
        }
        r = push_future(self, w, ev);
    }
    Py_DECREF(ev);
    if (r < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
sim_push_future(SimObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "_push_future expects (when, ev)");
        return NULL;
    }
    int err;
    long long when = as_longlong(args[0], &err);
    if (err)
        return NULL;
    if (push_future(self, when, args[1]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
sim_push_delivery(SimObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "_push_delivery expects (when, key, ev)");
        return NULL;
    }
    int err;
    long long when = as_longlong(args[0], &err);
    if (err)
        return NULL;
    if (when <= self->now) {
        PyErr_Format(g_SimulationError,
                     "delivery must be in the future (%S <= %lld)",
                     args[0], self->now);
        return NULL;
    }
    PyObject *when_obj = PyLong_FromLongLong(when);
    if (when_obj == NULL)
        return NULL;
    /* ensure a regular bucket exists for ``when`` even if it stays
     * empty, so the run loop's timestamp pop finds it */
    PyObject *bucket = PyDict_GetItemWithError(self->buckets, when_obj);
    if (bucket == NULL) {
        if (PyErr_Occurred()) {
            Py_DECREF(when_obj);
            return NULL;
        }
        bucket = list_pop_last(self->pool);
        if (bucket == NULL) {
            if (PyErr_Occurred()) {
                Py_DECREF(when_obj);
                return NULL;
            }
            bucket = PyList_New(0);
            if (bucket == NULL) {
                Py_DECREF(when_obj);
                return NULL;
            }
        }
        if (PyDict_SetItem(self->buckets, when_obj, bucket) < 0 ||
                heap_push(self, when) < 0) {
            Py_DECREF(bucket);
            Py_DECREF(when_obj);
            return NULL;
        }
        Py_DECREF(bucket);
    }
    PyObject *phase = PyDict_GetItemWithError(self->phase, when_obj);
    if (phase == NULL) {
        if (PyErr_Occurred()) {
            Py_DECREF(when_obj);
            return NULL;
        }
        phase = PyList_New(0);
        if (phase == NULL) {
            Py_DECREF(when_obj);
            return NULL;
        }
        if (PyDict_SetItem(self->phase, when_obj, phase) < 0) {
            Py_DECREF(phase);
            Py_DECREF(when_obj);
            return NULL;
        }
        Py_DECREF(phase);
        phase = PyDict_GetItemWithError(self->phase, when_obj);
        if (phase == NULL) {
            Py_DECREF(when_obj);
            return NULL;
        }
    }
    Py_DECREF(when_obj);
    PyObject *entry = PyTuple_Pack(2, args[1], args[2]);
    if (entry == NULL)
        return NULL;
    int r = PyList_Append(phase, entry);
    Py_DECREF(entry);
    if (r < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ---- processes ---- */

/* Process.__init__ replica: allocate on the Python Process type and
 * fill its slots directly, skipping the interpreter frame. */
static PyObject *
make_process(SimObject *self, PyObject *gen, PyObject *name)
{
    if (!g_fast)
        return PyObject_CallFunctionObjArgs(
            g_Process, gen, name, (PyObject *)self, NULL);
    PyObject *proc = g_ProcessType->tp_alloc(g_ProcessType, 0);
    if (proc == NULL)
        return NULL;
    int named = PyObject_IsTrue(name);
    if (named < 0)
        goto fail;
    PyObject *pname;
    if (named) {
        pname = Py_NewRef(name);
    }
    else {
        pname = PyObject_GetAttr(gen, s_dunder_name);
        if (pname == NULL) {
            PyErr_Clear();
            pname = PyUnicode_FromString("process");
            if (pname == NULL)
                goto fail;
        }
    }
    PyObject *stack = PyList_New(0);
    PyObject *waiters = PyList_New(0);
    if (stack == NULL || waiters == NULL) {
        Py_XDECREF(stack);
        Py_XDECREF(waiters);
        Py_DECREF(pname);
        goto fail;
    }
    SLOT(proc, off_p_gen) = Py_NewRef(gen);
    SLOT(proc, off_p_stack) = stack;
    SLOT(proc, off_p_name) = pname;
    SLOT(proc, off_p_sim) = Py_NewRef((PyObject *)self);
    SLOT(proc, off_p_done) = Py_NewRef(Py_False);
    SLOT(proc, off_p_result) = Py_NewRef(Py_None);
    SLOT(proc, off_p_error) = Py_NewRef(Py_None);
    SLOT(proc, off_p_waiters) = waiters;
    PyObject *inner = PyTuple_Pack(2, proc, Py_None);
    if (inner == NULL)
        goto fail;
    PyObject *rn = PyTuple_Pack(2, self->resume_cb, inner);
    Py_DECREF(inner);
    if (rn == NULL)
        goto fail;
    SLOT(proc, off_p_rn) = rn;
    return proc;
fail:
    Py_DECREF(proc);
    return NULL;
}

static PyObject *
sim_spawn(SimObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"gen", "name", NULL};
    PyObject *gen, *name = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|O", kwlist,
                                     &gen, &name))
        return NULL;
    PyObject *proc = make_process(self, gen, name ? name : g_empty_str);
    if (proc == NULL)
        return NULL;
    if (PySet_Add(self->active, proc) < 0) {
        Py_DECREF(proc);
        return NULL;
    }
    /* start after the current event finishes (spawn is not reentrant) */
    PyObject *rn = (g_fast && Py_IS_TYPE(proc, g_ProcessType))
        ? Py_XNewRef(SLOT(proc, off_p_rn)) : NULL;
    if (rn == NULL)
        rn = PyObject_GetAttr(proc, s_rn);
    if (rn == NULL || ring_push(self->ring, rn) < 0) {
        Py_XDECREF(rn);
        Py_DECREF(proc);
        return NULL;
    }
    Py_DECREF(rn);
    return proc;
}

/* ---- main loop ---- */

static int
run_core(SimObject *self, PyObject *until_obj, PyObject *maxev_obj)
{
    if (self->running) {
        PyErr_SetString(g_SimulationError, "run() is not reentrant");
        return -1;
    }
    int have_until = (until_obj != NULL && until_obj != Py_None);
    long long until = 0;
    if (have_until) {
        int err;
        until = as_longlong(until_obj, &err);
        if (err)
            return -1;
    }
    long long max_ev = -1;   /* -1 == unbounded */
    if (maxev_obj != NULL && maxev_obj != Py_None) {
        int err;
        max_ev = as_longlong(maxev_obj, &err);
        if (err)
            return -1;
        if (max_ev < 0)
            max_ev = -1;
    }
    self->running = 1;
    long long dispatched = 0;
    long long base = self->events_dispatched;
    int fail = 0;
    RingObject *ring = self->ring;

    for (;;) {
        while (ring->len) {
            if (dispatched == max_ev) {
                PyErr_Format(g_SimulationError,
                             "exceeded max_events=%S", maxev_obj);
                fail = 1;
                goto done;
            }
            PyObject *ev = ring_popleft(ring);
            if (!PyTuple_CheckExact(ev) || PyTuple_GET_SIZE(ev) != 2) {
                Py_DECREF(ev);
                PyErr_SetString(PyExc_TypeError,
                                "event must be a (fn, args) tuple");
                fail = 1;
                goto done;
            }
            PyObject *fn = PyTuple_GET_ITEM(ev, 0);
            PyObject *fargs = PyTuple_GET_ITEM(ev, 1);
            if (self->trace) {
                PyObject *desc = PyObject_GetAttr(fn, s_qualname);
                if (desc == NULL) {
                    PyErr_Clear();
                    desc = PyObject_Repr(fn);
                }
                PyObject *now_obj = desc ? PyLong_FromLongLong(self->now)
                                         : NULL;
                PyObject *entry = now_obj ? PyTuple_Pack(2, now_obj, desc)
                                          : NULL;
                int r = entry ? PyList_Append(self->trace_log, entry) : -1;
                Py_XDECREF(entry);
                Py_XDECREF(now_obj);
                Py_XDECREF(desc);
                if (r < 0) {
                    Py_DECREF(ev);
                    fail = 1;
                    goto done;
                }
            }
            int ok;
            if (fn == self->resume_cb && PyTuple_CheckExact(fargs) &&
                    PyTuple_GET_SIZE(fargs) == 2) {
                ok = resume_impl(self, PyTuple_GET_ITEM(fargs, 0),
                                 PyTuple_GET_ITEM(fargs, 1), NULL);
            }
            else {
                PyObject *res = PyObject_Call(fn, fargs, NULL);
                ok = (res == NULL) ? -1 : 0;
                Py_XDECREF(res);
            }
            Py_DECREF(ev);
            if (ok < 0) {
                fail = 1;
                goto done;
            }
            dispatched++;
        }
        if (self->heap_len == 0)
            break;
        /* events remain: the bound is checked before looking at
         * ``until`` so a capped run with work pending always raises */
        if (dispatched == max_ev) {
            PyErr_Format(g_SimulationError,
                         "exceeded max_events=%S", maxev_obj);
            fail = 1;
            goto done;
        }
        long long when = self->heap[0];
        if (have_until && when > until) {
            self->now = until;
            break;
        }
        heap_pop(self);
        self->now = when;
        PyObject *when_obj = PyLong_FromLongLong(when);
        if (when_obj == NULL) {
            fail = 1;
            goto done;
        }
        PyObject *phase = PyDict_GetItemWithError(self->phase, when_obj);
        if (phase != NULL) {
            /* delivery phase: canonical (src, seq) arrival order */
            Py_INCREF(phase);
            if (PyDict_DelItem(self->phase, when_obj) < 0 ||
                    (PyList_GET_SIZE(phase) > 1 && PyList_Sort(phase) < 0)) {
                Py_DECREF(phase);
                Py_DECREF(when_obj);
                fail = 1;
                goto done;
            }
            Py_ssize_t pn = PyList_GET_SIZE(phase);
            for (Py_ssize_t i = 0; i < pn; i++) {
                PyObject *entry = PyList_GET_ITEM(phase, i);
                if (ring_push(ring, PyTuple_GET_ITEM(entry, 1)) < 0) {
                    Py_DECREF(phase);
                    Py_DECREF(when_obj);
                    fail = 1;
                    goto done;
                }
            }
            Py_DECREF(phase);
        }
        else if (PyErr_Occurred()) {
            Py_DECREF(when_obj);
            fail = 1;
            goto done;
        }
        PyObject *bucket = PyDict_GetItemWithError(self->buckets, when_obj);
        if (bucket == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_SystemError,
                                "timestamp on heap without bucket");
            Py_DECREF(when_obj);
            fail = 1;
            goto done;
        }
        Py_INCREF(bucket);
        if (PyDict_DelItem(self->buckets, when_obj) < 0) {
            Py_DECREF(bucket);
            Py_DECREF(when_obj);
            fail = 1;
            goto done;
        }
        Py_DECREF(when_obj);
        Py_ssize_t bn = PyList_GET_SIZE(bucket);
        for (Py_ssize_t i = 0; i < bn; i++) {
            if (ring_push(ring, PyList_GET_ITEM(bucket, i)) < 0) {
                Py_DECREF(bucket);
                fail = 1;
                goto done;
            }
        }
        /* clear and recycle the drained bucket */
        if (PyList_SetSlice(bucket, 0, bn, NULL) < 0 ||
                PyList_Append(self->pool, bucket) < 0) {
            Py_DECREF(bucket);
            fail = 1;
            goto done;
        }
        Py_DECREF(bucket);
    }

done:
    self->running = 0;
    self->events_dispatched = base + dispatched;
    return fail ? -1 : 0;
}

static PyObject *
sim_run(SimObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until", "max_events", NULL};
    PyObject *until_obj = Py_None, *maxev_obj = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OO", kwlist,
                                     &until_obj, &maxev_obj))
        return NULL;
    if (run_core(self, until_obj, maxev_obj) < 0)
        return NULL;
    return PyLong_FromLongLong(self->now);
}

static PyObject *
sim_run_process(SimObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"gen", "name", "max_events", NULL};
    PyObject *gen, *name = NULL, *maxev_obj = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|OO", kwlist,
                                     &gen, &name, &maxev_obj))
        return NULL;
    PyObject *name_obj = name ? Py_NewRef(name)
                              : PyUnicode_FromString("main");
    if (name_obj == NULL)
        return NULL;
    PyObject *spawn_args = PyTuple_Pack(2, gen, name_obj);
    if (spawn_args == NULL) {
        Py_DECREF(name_obj);
        return NULL;
    }
    PyObject *proc = sim_spawn(self, spawn_args, NULL);
    Py_DECREF(spawn_args);
    if (proc == NULL) {
        Py_DECREF(name_obj);
        return NULL;
    }
    if (run_core(self, Py_None, maxev_obj) < 0) {
        Py_DECREF(name_obj);
        Py_DECREF(proc);
        return NULL;
    }
    PyObject *done = PyObject_GetAttr(proc, s_done);
    if (done == NULL) {
        Py_DECREF(name_obj);
        Py_DECREF(proc);
        return NULL;
    }
    int is_done = PyObject_IsTrue(done);
    Py_DECREF(done);
    if (is_done <= 0) {
        if (is_done == 0)
            PyErr_Format(
                g_SimulationError,
                "deadlock: process %R still blocked at t=%lld with %zd "
                "live processes", name_obj, self->now,
                PySet_GET_SIZE(self->active));
        Py_DECREF(name_obj);
        Py_DECREF(proc);
        return NULL;
    }
    Py_DECREF(name_obj);
    PyObject *result = PyObject_GetAttr(proc, s_result);
    Py_DECREF(proc);
    return result;
}

/* ---- diagnostics ---- */

static Py_ssize_t
dict_values_total_len(PyObject *dict)
{
    Py_ssize_t total = 0;
    Py_ssize_t pos = 0;
    PyObject *key, *value;
    while (PyDict_Next(dict, &pos, &key, &value))
        total += PyList_GET_SIZE(value);
    return total;
}

static PyObject *
sim_pending_events(SimObject *self, PyObject *Py_UNUSED(ignored))
{
    Py_ssize_t total = self->ring->len
        + dict_values_total_len(self->buckets)
        + dict_values_total_len(self->phase);
    return PyLong_FromSsize_t(total);
}

static PyObject *
sim_next_event_time(SimObject *self, PyObject *Py_UNUSED(ignored))
{
    if (self->ring->len)
        return PyLong_FromLongLong(self->now);
    if (self->heap_len)
        return PyLong_FromLongLong(self->heap[0]);
    Py_RETURN_NONE;
}

/* ---- attribute plumbing ---- */

static PyObject *
sim_get_now(SimObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->now);
}

static int
sim_set_now(SimObject *self, PyObject *value, void *Py_UNUSED(closure))
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete now");
        return -1;
    }
    int err;
    long long v = as_longlong(value, &err);
    if (err)
        return -1;
    self->now = v;
    return 0;
}

static PyObject *
sim_get_events_dispatched(SimObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->events_dispatched);
}

static int
sim_set_events_dispatched(SimObject *self, PyObject *value,
                          void *Py_UNUSED(closure))
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError,
                        "cannot delete events_dispatched");
        return -1;
    }
    int err;
    long long v = as_longlong(value, &err);
    if (err)
        return -1;
    self->events_dispatched = v;
    return 0;
}

static PyObject *
sim_get_resume(SimObject *self, void *Py_UNUSED(closure))
{
    return Py_NewRef(self->resume_cb);
}

static PyGetSetDef Sim_getset[] = {
    {"now", (getter)sim_get_now, (setter)sim_set_now,
     "current simulated time in CPU cycles", NULL},
    {"events_dispatched", (getter)sim_get_events_dispatched,
     (setter)sim_set_events_dispatched,
     "total events dispatched across all run() calls", NULL},
    {"_resume", (getter)sim_get_resume, NULL,
     "the kernel's stable resume callable (identity matters: "
     "``proc._rn`` tuples all reference this one object)", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef Sim_members[] = {
    {"trace", T_BOOL, offsetof(SimObject, trace), 0,
     "whether dispatches are appended to trace_log"},
    {"trace_log", T_OBJECT_EX, offsetof(SimObject, trace_log), READONLY,
     "list of (time, description) dispatch records (trace=True only)"},
    {"active_processes", T_OBJECT_EX, offsetof(SimObject, active), READONLY,
     "live (unfinished) processes, for leak diagnostics in tests"},
    {"_ring", T_OBJECT_EX, offsetof(SimObject, ring), READONLY,
     "same-cycle FIFO dispatch ring (append/__len__/__bool__)"},
    {NULL, 0, 0, 0, NULL},
};

static PyMethodDef Sim_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))sim_schedule, METH_FASTCALL,
     "schedule(delay, fn, *args): run fn(*args) delay cycles from now."},
    {"schedule_at", (PyCFunction)(void (*)(void))sim_schedule_at,
     METH_FASTCALL,
     "schedule_at(when, fn, *args): run fn(*args) at absolute time when."},
    {"_push_future", (PyCFunction)(void (*)(void))sim_push_future,
     METH_FASTCALL,
     "_push_future(when, ev): append ev to the bucket at future time when."},
    {"_push_delivery", (PyCFunction)(void (*)(void))sim_push_delivery,
     METH_FASTCALL,
     "_push_delivery(when, key, ev): queue a delivery-phase event."},
    {"spawn", (PyCFunction)(void (*)(void))sim_spawn,
     METH_VARARGS | METH_KEYWORDS,
     "spawn(gen, name=''): create a Process and start it this cycle."},
    {"run", (PyCFunction)(void (*)(void))sim_run,
     METH_VARARGS | METH_KEYWORDS,
     "run(until=None, max_events=None): dispatch until drained/bounded."},
    {"run_process", (PyCFunction)(void (*)(void))sim_run_process,
     METH_VARARGS | METH_KEYWORDS,
     "run_process(gen, name='main', max_events=None): spawn, run, return "
     "the process result (raises on deadlock)."},
    {"pending_events", (PyCFunction)sim_pending_events, METH_NOARGS,
     "Number of events currently queued (diagnostic)."},
    {"next_event_time", (PyCFunction)sim_next_event_time, METH_NOARGS,
     "Earliest queued event time, or None if drained."},
    {NULL, NULL, 0, NULL},
};

static int
Sim_init(SimObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"trace", NULL};
    int trace = 0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|p", kwlist, &trace))
        return -1;
    self->now = 0;
    self->events_dispatched = 0;
    self->running = 0;
    self->trace = (char)trace;
    RingObject *ring = ring_new();
    if (ring == NULL)
        return -1;
    Py_XSETREF(self->ring, ring);
    PyObject *tmp;
    tmp = PyDict_New();
    if (tmp == NULL)
        return -1;
    Py_XSETREF(self->buckets, tmp);
    tmp = PyDict_New();
    if (tmp == NULL)
        return -1;
    Py_XSETREF(self->phase, tmp);
    tmp = PyList_New(0);
    if (tmp == NULL)
        return -1;
    Py_XSETREF(self->pool, tmp);
    tmp = PyList_New(0);
    if (tmp == NULL)
        return -1;
    Py_XSETREF(self->trace_log, tmp);
    tmp = PySet_New(NULL);
    if (tmp == NULL)
        return -1;
    Py_XSETREF(self->active, tmp);
    tmp = PyCFunction_New(&resume_def, (PyObject *)self);
    if (tmp == NULL)
        return -1;
    Py_XSETREF(self->resume_cb, tmp);
    self->heap_len = 0;
    return 0;
}

static int
Sim_traverse(SimObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->ring);
    Py_VISIT(self->buckets);
    Py_VISIT(self->phase);
    Py_VISIT(self->pool);
    Py_VISIT(self->trace_log);
    Py_VISIT(self->active);
    Py_VISIT(self->resume_cb);
    return 0;
}

static int
Sim_clear(SimObject *self)
{
    Py_CLEAR(self->ring);
    Py_CLEAR(self->buckets);
    Py_CLEAR(self->phase);
    Py_CLEAR(self->pool);
    Py_CLEAR(self->trace_log);
    Py_CLEAR(self->active);
    Py_CLEAR(self->resume_cb);
    return 0;
}

static void
Sim_dealloc(SimObject *self)
{
    PyObject_GC_UnTrack(self);
    Sim_clear(self);
    PyMem_Free(self->heap);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject Sim_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim.backends._accel_core.AccelSimulator",
    .tp_basicsize = sizeof(SimObject),
    .tp_dealloc = (destructor)Sim_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled deterministic discrete-event simulation kernel "
              "(byte-identical to repro.sim.kernel.Simulator).",
    .tp_traverse = (traverseproc)Sim_traverse,
    .tp_clear = (inquiry)Sim_clear,
    .tp_methods = Sim_methods,
    .tp_members = Sim_members,
    .tp_getset = Sim_getset,
    .tp_init = (initproc)Sim_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* module                                                              */
/* ------------------------------------------------------------------ */

static struct PyModuleDef accel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim.backends._accel_core",
    .m_doc = "Compiled accel event core (see repro.sim.backends).",
    .m_size = -1,
};

static int
intern_all(void)
{
#define INTERN(var, text)                          \
    do {                                           \
        var = PyUnicode_InternFromString(text);    \
        if (var == NULL)                           \
            return -1;                             \
    } while (0)
    INTERN(s_done, "done");
    INTERN(s_gen, "gen");
    INTERN(s_stack, "stack");
    INTERN(s_rn, "_rn");
    INTERN(s_finish, "_finish");
    INTERN(s_fail, "_fail");
    INTERN(s_arm, "_arm");
    INTERN(s_throw, "throw");
    INTERN(s_name, "name");
    INTERN(s_result, "result");
    INTERN(s_delay, "delay");
    INTERN(s_qualname, "__qualname__");
    INTERN(s_value, "value");
    INTERN(s_append, "append");
    INTERN(s_popleft, "popleft");
    INTERN(s_dunder_name, "__name__");
#undef INTERN
    return 0;
}

/* fetch ``mod.name`` and require it to be a type */
static PyTypeObject *
get_type(PyObject *mod, const char *name)
{
    PyObject *obj = PyObject_GetAttrString(mod, name);
    if (obj == NULL)
        return NULL;
    if (!PyType_Check(obj)) {
        Py_DECREF(obj);
        PyErr_Format(PyExc_TypeError, "%s is not a type", name);
        return NULL;
    }
    return (PyTypeObject *)obj;
}

/* Resolve every slot offset the specialized paths rely on.  Returns 1
 * when all of them are plain T_OBJECT_EX member descriptors (enabling
 * ``g_fast``), 0 when any is missing — never an error: a refactored
 * Python class simply disables the fast paths. */
static int
resolve_offsets(void)
{
    PyObject *proc_cls = (PyObject *)g_ProcessType;
    off_p_gen = slot_off(proc_cls, "gen");
    off_p_stack = slot_off(proc_cls, "stack");
    off_p_name = slot_off(proc_cls, "name");
    off_p_sim = slot_off(proc_cls, "sim");
    off_p_done = slot_off(proc_cls, "done");
    off_p_result = slot_off(proc_cls, "result");
    off_p_error = slot_off(proc_cls, "error");
    off_p_waiters = slot_off(proc_cls, "_waiters");
    off_p_rn = slot_off(proc_cls, "_rn");
    off_j_target = slot_off((PyObject *)g_JoinType, "target");
    off_w_signal = slot_off((PyObject *)g_WaitType, "signal");
    off_gw_gate = slot_off((PyObject *)g_GateWaitType, "gate");
    off_a_resource = slot_off((PyObject *)g_AcquireType, "resource");
    off_qg_queue = slot_off((PyObject *)g_QueueGetType, "queue");
    off_s_waiters = slot_off((PyObject *)g_SignalType, "_waiters");
    off_s_fired = slot_off((PyObject *)g_SignalType, "fired");
    off_s_value = slot_off((PyObject *)g_SignalType, "value");
    off_g_waiters = slot_off((PyObject *)g_GateType, "_waiters");
    off_g_open = slot_off((PyObject *)g_GateType, "open");
    off_g_value = slot_off((PyObject *)g_GateType, "value");
    off_r_busy = slot_off((PyObject *)g_ResourceType, "_busy");
    off_r_queue = slot_off((PyObject *)g_ResourceType, "_queue");
    off_r_grants = slot_off((PyObject *)g_ResourceType, "grants");
    off_r_acquired = slot_off((PyObject *)g_ResourceType, "_acquired_at");
    off_r_sim = slot_off((PyObject *)g_ResourceType, "_sim");
    off_fq_items = slot_off((PyObject *)g_FifoQueueType, "_items");
    off_fq_getters = slot_off((PyObject *)g_FifoQueueType, "_getters");
    const Py_ssize_t offs[] = {
        off_p_gen, off_p_stack, off_p_name, off_p_sim, off_p_done,
        off_p_result, off_p_error, off_p_waiters, off_p_rn,
        off_j_target, off_w_signal, off_gw_gate, off_a_resource,
        off_qg_queue, off_s_waiters, off_s_fired, off_s_value,
        off_g_waiters, off_g_open, off_g_value, off_r_busy, off_r_queue,
        off_r_grants, off_r_acquired, off_r_sim, off_fq_items,
        off_fq_getters,
    };
    for (size_t i = 0; i < sizeof(offs) / sizeof(offs[0]); i++)
        if (offs[i] < 0)
            return 0;
    return 1;
}

PyMODINIT_FUNC
PyInit__accel_core(void)
{
    if (intern_all() < 0)
        return NULL;
    g_empty_str = PyUnicode_FromString("");
    if (g_empty_str == NULL)
        return NULL;
    PyObject *kernel = PyImport_ImportModule("repro.sim.kernel");
    if (kernel == NULL)
        return NULL;
    g_SimulationError = PyObject_GetAttrString(kernel, "SimulationError");
    Py_DECREF(kernel);
    if (g_SimulationError == NULL)
        return NULL;
    g_one = PyLong_FromLong(1);
    if (g_one == NULL)
        return NULL;
    PyObject *process = PyImport_ImportModule("repro.sim.process");
    if (process == NULL)
        return NULL;
    g_Process = PyObject_GetAttrString(process, "Process");
    if (g_Process == NULL) {
        Py_DECREF(process);
        return NULL;
    }
    g_ProcessType = get_type(process, "Process");
    g_JoinType = get_type(process, "JoinCmd");
    Py_DECREF(process);
    if (g_ProcessType == NULL || g_JoinType == NULL)
        return NULL;
    PyObject *primitives = PyImport_ImportModule("repro.sim.primitives");
    if (primitives == NULL)
        return NULL;
    g_TimeoutType = get_type(primitives, "Timeout");
    g_WaitType = get_type(primitives, "Wait");
    g_GateWaitType = get_type(primitives, "GateWait");
    g_AcquireType = get_type(primitives, "Acquire");
    g_QueueGetType = get_type(primitives, "QueueGet");
    g_SignalType = get_type(primitives, "Signal");
    g_GateType = get_type(primitives, "Gate");
    g_ResourceType = get_type(primitives, "Resource");
    g_FifoQueueType = get_type(primitives, "FifoQueue");
    Py_DECREF(primitives);
    if (g_TimeoutType == NULL || g_WaitType == NULL ||
            g_GateWaitType == NULL || g_AcquireType == NULL ||
            g_QueueGetType == NULL || g_SignalType == NULL ||
            g_GateType == NULL || g_ResourceType == NULL ||
            g_FifoQueueType == NULL)
        return NULL;
    g_fast = resolve_offsets();

    if (PyType_Ready(&Ring_Type) < 0 || PyType_Ready(&Sim_Type) < 0)
        return NULL;
    PyObject *mod = PyModule_Create(&accel_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddObjectRef(mod, "AccelSimulator",
                              (PyObject *)&Sim_Type) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
