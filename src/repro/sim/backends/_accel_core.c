/* Compiled ``accel`` event core — a C implementation of the kernel
 * contract defined by repro.sim.kernel.Simulator.
 *
 * The semantics (two-tier queue, same-cycle FIFO dispatch ring,
 * delivery-phase (src, seq) ordering, flattened resume trampoline,
 * error messages) are replicated exactly; the pure-Python module
 * repro/sim/backends/accel_py.py is the executable specification and
 * automatic fallback when this extension is not built.  Parity is
 * enforced byte-identically by tools/capture_parity.py --verify
 * --backend accel and by the backend-conformance test suite.
 *
 * What the C restructuring buys over the reference loop:
 *  - the dispatch ring is a C circular buffer of (fn, args) tuples (a
 *    small `_ring` view object keeps the external append/__bool__
 *    contract for the primitives);
 *  - future timestamps live in a C int64 binary heap; buckets and the
 *    delivery phase stay Python lists inside dicts, driven via the C
 *    API (no interpreter dispatch on the hot path);
 *  - ``sim._resume`` is one stable bound callable; the run loop
 *    pointer-compares each event's callable against it and runs the
 *    resume trampoline inline — PyIter_Send drives the generator, so a
 *    normal resume never materializes a StopIteration;
 *  - Timeout arming is type-specialized inside the trampoline.
 *
 * Python Process/Timeout/primitives objects are shared with the
 * reference backend (imported at module init), so model code and the
 * primitives module need no backend awareness at all.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>   /* T_OBJECT_EX / READONLY member flags */
#include <stddef.h>

/* ------------------------------------------------------------------ */
/* module-level handles resolved at import time                        */
/* ------------------------------------------------------------------ */

static PyObject *g_SimulationError;   /* repro.sim.kernel.SimulationError */
static PyObject *g_Process;           /* repro.sim.process.Process        */
static PyTypeObject *g_ProcessType;
static PyTypeObject *g_TimeoutType;   /* repro.sim.primitives.Timeout     */
static PyTypeObject *g_WaitType, *g_GateWaitType, *g_AcquireType,
    *g_QueueGetType, *g_JoinType;
static PyTypeObject *g_SignalType, *g_GateType, *g_ResourceType,
    *g_FifoQueueType;
static PyObject *g_empty_str, *g_one;

/* interned attribute names */
static PyObject *s_done, *s_gen, *s_stack, *s_rn, *s_finish, *s_fail,
    *s_arm, *s_throw, *s_name, *s_result, *s_delay, *s_qualname, *s_value,
    *s_append, *s_popleft, *s_dunder_name;

/* ---- model fast-path state (armed lazily via arm_model) ---- */

/* Types and callables of the model layer (fabric / coherence / egress
 * waves).  They live in modules that import this one, so they cannot be
 * resolved at module init; ``arm_model`` binds them on first accel
 * machine construction (see repro.sim.backends.model). */
static int g_model_fast = 0;
static PyTypeObject *g_MsgType, *g_HubType, *g_CtrlType, *g_CacheType,
    *g_LineType, *g_LineMetaType, *g_WaveType, *g_StatsType;
static PyObject *g_WordUpdateKind, *g_InvalidState, *g_MsgIds;
static PyObject *g_NetSend, *g_NetDeliver, *g_HubReceive,
    *g_WaveGrantedPy, *g_WaveExpirePy;
/* Python twins of the compiled model coroutines (fallback targets) */
static PyObject *g_EgressSendPy, *g_CtrlLoadPy, *g_CtrlSpinPy, *g_CtrlInvPy;
static PyObject *g_ServeGetSPy, *g_FinishCleanPy;
static PyObject *g_InvAckKind, *g_InvAckBytes;
static PyObject *g_DataSKind, *g_DataSBytes;
static PyObject *g_DirExclusive, *g_DirShared;
static PyTypeObject *g_HomeType, *g_DirEntType, *g_DramType;
static long long g_line_bytes, g_word_bytes;

/* compiled model coroutine (state machines for the protocol hot paths);
 * defined after the model helpers, forward-declared for the trampoline */
static PyTypeObject Coro_Type;

/* interned names used by the model fast paths */
static PyObject *s_sim, *s_send, *s_stats, *s_config, *s_shard,
    *s_handlers, *s_send_hooks, *s_delay_injector, *s_reorder_injector,
    *s_inj_seq, *s_route_cache, *s_deliver, *s_messages, *s_bytes,
    *s_hop_bytes, *s_local_messages, *s_retransmits, *s_trace_enabled,
    *s_router_contention, *s_link_contention, *s_is_reply,
    *s_packet_bytes, *s_try_fire, *s_fire, *s_pulse, *s_line_changed,
    *s_updates, *s_apply_word_update, *s_net, *s_carries_line,
    *s_load_miss, *s_fill_l1, *s_exclusive, *s_poisoned,
    *s_entry, *s_read_line, *s_spawn, *s_line_bytes, *s_get_s_owned;

/* --------------------------------------------------------------------
 * Slot-offset specialization.
 *
 * Process and the waitable primitives are plain Python classes with
 * __slots__ shared verbatim with the reference backend.  Their slot
 * descriptors expose fixed struct offsets, so the trampoline can read
 * and write e.g. ``proc.gen`` or ``resource._busy`` as one pointer
 * dereference instead of a descriptor dispatch — and can replicate the
 * whole body of the hot ``_arm``/``_finish`` methods without entering
 * the interpreter.  Resolution happens once at import; if any slot is
 * missing (the Python classes were refactored), ``g_fast`` stays 0 and
 * every access falls back to the generic attribute protocol, keeping
 * behaviour — if not speed — intact.
 * ------------------------------------------------------------------ */

static int g_fast = 0;

/* Process */
static Py_ssize_t off_p_gen, off_p_stack, off_p_name, off_p_sim,
    off_p_done, off_p_result, off_p_error, off_p_waiters, off_p_rn;
/* JoinCmd / Wait / GateWait / Acquire / QueueGet (the yielded cmds) */
static Py_ssize_t off_j_target, off_w_signal, off_gw_gate, off_a_resource,
    off_qg_queue;
/* Signal / Gate / Resource / FifoQueue (the cmds' referents) */
static Py_ssize_t off_s_waiters, off_s_fired, off_s_value;
static Py_ssize_t off_g_waiters, off_g_open, off_g_value;
static Py_ssize_t off_r_busy, off_r_queue, off_r_grants, off_r_acquired,
    off_r_sim;
static Py_ssize_t off_fq_items, off_fq_getters;

/* model-layer offsets (resolved by arm_model, gate g_model_fast) */
static Py_ssize_t off_m_kind, off_m_src, off_m_dst, off_m_addr, off_m_value,
    off_m_payload, off_m_reply_to, off_m_requester, off_m_dst_cpu,
    off_m_retransmit, off_m_size, off_m_id;
static Py_ssize_t off_h_routes, off_h_controllers, off_h_net;
static Py_ssize_t off_h_egress, off_h_t_update, off_h_t_ctrl, off_h_t_line;
static Py_ssize_t off_c_l1, off_c_l2, off_c_resv, off_c_meta, off_c_inflight;
static Py_ssize_t off_c_hub, off_c_sim, off_c_node, off_c_cpu,
    off_c_t_l1, off_c_t_l2, off_c_spinw;
static Py_ssize_t off_sc_sets, off_sc_nsets, off_sc_lb, off_sc_wu;
static Py_ssize_t off_sc_stamp, off_sc_hits, off_sc_misses, off_sc_inval;
static Py_ssize_t off_cl_state, off_cl_words, off_cl_lastuse;
static Py_ssize_t off_lm_version, off_lm_gate, off_lm_gatewait;
static Py_ssize_t off_r_acquire;
static Py_ssize_t off_ew_hub, off_ew_sim, off_ew_res, off_ew_msgs,
    off_ew_occ, off_ew_index, off_ew_done, off_ew_rn, off_ew_expiry;
static Py_ssize_t off_r_busy_cycles;
static Py_ssize_t off_he_dram, off_he_backing, off_he_dir, off_he_sim,
    off_he_hub, off_he_node, off_he_config, off_he_gets, off_he_tdir,
    off_he_name_rf;
static Py_ssize_t off_de_line, off_de_state, off_de_mask, off_de_owner,
    off_de_busy, off_de_version;
static Py_ssize_t off_dr_chan, off_dr_lineacc, off_dr_t_occ, off_dr_t_res,
    off_dr_resid;

#define SLOT(obj, off) (*(PyObject **)((char *)(obj) + (off)))

/* truth of a slot value that is almost always a bool singleton */
static inline int
slot_truth(PyObject *v)
{
    if (v == Py_True)
        return 1;
    if (v == Py_False || v == NULL)
        return 0;
    return PyObject_IsTrue(v);
}

/* store an owned reference into a slot, dropping the old value */
static inline void
slot_store(PyObject *obj, Py_ssize_t off, PyObject *value_owned)
{
    PyObject *old = SLOT(obj, off);
    SLOT(obj, off) = value_owned;
    Py_XDECREF(old);
}

static Py_ssize_t
slot_off(PyObject *cls, const char *name)
{
    PyObject *descr = PyObject_GetAttrString(cls, name);
    if (descr == NULL) {
        PyErr_Clear();
        return -1;
    }
    Py_ssize_t off = -1;
    if (Py_IS_TYPE(descr, &PyMemberDescr_Type)) {
        PyMemberDef *m = ((PyMemberDescrObject *)descr)->d_member;
        if (m->type == T_OBJECT_EX)
            off = m->offset;
    }
    Py_DECREF(descr);
    return off;
}

/* ------------------------------------------------------------------ */
/* EventRing: the same-cycle FIFO dispatch ring                        */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject **buf;
    Py_ssize_t head;   /* index of the oldest element */
    Py_ssize_t len;
    Py_ssize_t cap;    /* power of two */
} RingObject;

static PyTypeObject Ring_Type;

static int
ring_grow(RingObject *r)
{
    Py_ssize_t newcap = r->cap ? r->cap * 2 : 64;
    PyObject **nb = PyMem_New(PyObject *, newcap);
    if (nb == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    for (Py_ssize_t i = 0; i < r->len; i++)
        nb[i] = r->buf[(r->head + i) & (r->cap - 1)];
    PyMem_Free(r->buf);
    r->buf = nb;
    r->head = 0;
    r->cap = newcap;
    return 0;
}

/* steals no reference: increfs ev */
static int
ring_push(RingObject *r, PyObject *ev)
{
    if (r->len == r->cap && ring_grow(r) < 0)
        return -1;
    r->buf[(r->head + r->len) & (r->cap - 1)] = Py_NewRef(ev);
    r->len++;
    return 0;
}

/* returns an owned reference; caller must ensure len > 0 */
static PyObject *
ring_popleft(RingObject *r)
{
    PyObject *ev = r->buf[r->head];
    r->head = (r->head + 1) & (r->cap - 1);
    r->len--;
    return ev;
}

static PyObject *
Ring_append(RingObject *r, PyObject *ev)
{
    if (ring_push(r, ev) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static Py_ssize_t
Ring_length(RingObject *r)
{
    return r->len;
}

static int
Ring_traverse(RingObject *r, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < r->len; i++)
        Py_VISIT(r->buf[(r->head + i) & (r->cap - 1)]);
    return 0;
}

static int
Ring_clear_impl(RingObject *r)
{
    for (Py_ssize_t i = 0; i < r->len; i++) {
        PyObject *ev = r->buf[(r->head + i) & (r->cap - 1)];
        r->buf[(r->head + i) & (r->cap - 1)] = NULL;
        Py_XDECREF(ev);
    }
    r->len = 0;
    r->head = 0;
    return 0;
}

static void
Ring_dealloc(RingObject *r)
{
    PyObject_GC_UnTrack(r);
    Ring_clear_impl(r);
    PyMem_Free(r->buf);
    Py_TYPE(r)->tp_free((PyObject *)r);
}

static PyMethodDef Ring_methods[] = {
    {"append", (PyCFunction)Ring_append, METH_O,
     "Append one (fn, args) event tuple."},
    {NULL, NULL, 0, NULL},
};

static PySequenceMethods Ring_as_sequence = {
    .sq_length = (lenfunc)Ring_length,
};

static PyTypeObject Ring_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim.backends._accel_core.EventRing",
    .tp_basicsize = sizeof(RingObject),
    .tp_dealloc = (destructor)Ring_dealloc,
    .tp_as_sequence = &Ring_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Same-cycle FIFO dispatch ring (C circular buffer).",
    .tp_traverse = (traverseproc)Ring_traverse,
    .tp_clear = (inquiry)Ring_clear_impl,
    .tp_methods = Ring_methods,
};

static RingObject *
ring_new(void)
{
    RingObject *r = PyObject_GC_New(RingObject, &Ring_Type);
    if (r == NULL)
        return NULL;
    r->buf = NULL;
    r->head = r->len = r->cap = 0;
    PyObject_GC_Track(r);
    return r;
}

/* ------------------------------------------------------------------ */
/* AccelSimulator                                                      */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    long long now;
    long long events_dispatched;
    char running;
    char trace;
    RingObject *ring;
    PyObject *buckets;     /* dict: when (int) -> list of events        */
    PyObject *phase;       /* dict: when (int) -> list of (key, event)  */
    PyObject *pool;        /* list of recycled bucket lists             */
    PyObject *trace_log;   /* list of (time, description)               */
    PyObject *active;      /* set of live processes                     */
    PyObject *resume_cb;   /* the one stable bound ``_resume`` callable */
    long long *heap;       /* min-heap of distinct future timestamps    */
    Py_ssize_t heap_len;
    Py_ssize_t heap_cap;
} SimObject;

static PyTypeObject Sim_Type;

/* ---- int64 binary heap ---- */

static int
heap_push(SimObject *s, long long when)
{
    if (s->heap_len == s->heap_cap) {
        Py_ssize_t newcap = s->heap_cap ? s->heap_cap * 2 : 64;
        long long *nh = PyMem_Resize(s->heap, long long, newcap);
        if (nh == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        s->heap = nh;
        s->heap_cap = newcap;
    }
    Py_ssize_t i = s->heap_len++;
    long long *h = s->heap;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (h[parent] <= when)
            break;
        h[i] = h[parent];
        i = parent;
    }
    h[i] = when;
    return 0;
}

static void
heap_pop(SimObject *s)
{
    long long *h = s->heap;
    Py_ssize_t n = --s->heap_len;
    if (n == 0)
        return;
    long long last = h[n];
    Py_ssize_t i = 0;
    for (;;) {
        Py_ssize_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && h[child + 1] < h[child])
            child++;
        if (last <= h[child])
            break;
        h[i] = h[child];
        i = child;
    }
    h[i] = last;
}

/* ---- list helpers ---- */

/* pop the last element of a list; returns owned ref or NULL (empty/err) */
static PyObject *
list_pop_last(PyObject *list)
{
    Py_ssize_t n = PyList_GET_SIZE(list);
    if (n == 0)
        return NULL;
    PyObject *item = Py_NewRef(PyList_GET_ITEM(list, n - 1));
    if (PyList_SetSlice(list, n - 1, n, NULL) < 0) {
        Py_DECREF(item);
        return NULL;
    }
    return item;
}

/* ---- future-event queue ---- */

/* append ev to the bucket at ``when``, creating it (pool-recycled) and
 * registering the timestamp on the heap if absent */
static int
push_future(SimObject *self, long long when, PyObject *ev)
{
    PyObject *when_obj = PyLong_FromLongLong(when);
    if (when_obj == NULL)
        return -1;
    PyObject *bucket = PyDict_GetItemWithError(self->buckets, when_obj);
    if (bucket != NULL) {
        int r = PyList_Append(bucket, ev);
        Py_DECREF(when_obj);
        return r;
    }
    if (PyErr_Occurred()) {
        Py_DECREF(when_obj);
        return -1;
    }
    bucket = list_pop_last(self->pool);
    if (bucket == NULL) {
        if (PyErr_Occurred()) {
            Py_DECREF(when_obj);
            return -1;
        }
        bucket = PyList_New(0);
        if (bucket == NULL) {
            Py_DECREF(when_obj);
            return -1;
        }
    }
    if (PyDict_SetItem(self->buckets, when_obj, bucket) < 0 ||
            heap_push(self, when) < 0 ||
            PyList_Append(bucket, ev) < 0) {
        Py_DECREF(bucket);
        Py_DECREF(when_obj);
        return -1;
    }
    Py_DECREF(bucket);
    Py_DECREF(when_obj);
    return 0;
}

/* ---- resume trampoline ---- */

/* append a "resume ``proc`` with ``value``" event to the ring.  A
 * None-valued wake-up reuses the process's interned ``_rn`` tuple, just
 * like the Python primitives do. */
static int
push_resume(SimObject *self, PyObject *proc, PyObject *value)
{
    if (value == Py_None && g_fast && Py_IS_TYPE(proc, g_ProcessType)) {
        PyObject *rn = SLOT(proc, off_p_rn);
        if (rn != NULL)
            return ring_push(self->ring, rn);
    }
    PyObject *args = PyTuple_Pack(2, proc, value);
    if (args == NULL)
        return -1;
    PyObject *ev = PyTuple_Pack(2, self->resume_cb, args);
    Py_DECREF(args);
    if (ev == NULL)
        return -1;
    int r = ring_push(self->ring, ev);
    Py_DECREF(ev);
    return r;
}

/* Process._finish: mark done, store the result, wake joiners */
static int
proc_finish(SimObject *self, PyObject *proc, PyObject *result)
{
    if (!(g_fast && Py_IS_TYPE(proc, g_ProcessType))) {
        PyObject *r = PyObject_CallMethodOneArg(proc, s_finish, result);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    slot_store(proc, off_p_done, Py_NewRef(Py_True));
    slot_store(proc, off_p_result, Py_NewRef(result));
    PyObject *waiters = SLOT(proc, off_p_waiters);
    if (waiters != NULL && PyList_CheckExact(waiters)
            && PyList_GET_SIZE(waiters) > 0) {
        PyObject *empty = PyList_New(0);
        if (empty == NULL)
            return -1;
        SLOT(proc, off_p_waiters) = empty;   /* we now own ``waiters`` */
        Py_ssize_t n = PyList_GET_SIZE(waiters);
        for (Py_ssize_t i = 0; i < n; i++) {
            if (push_resume(self, PyList_GET_ITEM(waiters, i), result) < 0) {
                Py_DECREF(waiters);
                return -1;
            }
        }
        Py_DECREF(waiters);
    }
    return 0;
}

/* Process._fail: mark done, record the error, abandon joiners */
static int
proc_fail(PyObject *proc, PyObject *error)
{
    if (!(g_fast && Py_IS_TYPE(proc, g_ProcessType))) {
        PyObject *r = PyObject_CallMethodOneArg(proc, s_fail, error);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    PyObject *empty = PyList_New(0);
    if (empty == NULL)
        return -1;
    slot_store(proc, off_p_done, Py_NewRef(Py_True));
    slot_store(proc, off_p_error, Py_NewRef(error));
    slot_store(proc, off_p_waiters, empty);
    return 0;
}

static int
proc_set_gen(PyObject *proc, int fast, PyObject *newgen)
{
    if (fast) {
        slot_store(proc, off_p_gen, Py_NewRef(newgen));
        return 0;
    }
    return PyObject_SetAttr(proc, s_gen, newgen);
}

static int
resume_impl(SimObject *self, PyObject *proc, PyObject *value_in,
            PyObject *exc_in)
{
    int fast = g_fast && Py_IS_TYPE(proc, g_ProcessType);
    PyObject *gen, *stack;
    if (fast) {
        int is_done = slot_truth(SLOT(proc, off_p_done));
        if (is_done < 0)
            return -1;
        if (is_done)
            return 0;
        gen = Py_XNewRef(SLOT(proc, off_p_gen));
        stack = Py_XNewRef(SLOT(proc, off_p_stack));
        if (gen == NULL || stack == NULL) {
            Py_XDECREF(gen);
            Py_XDECREF(stack);
            PyErr_Format(PyExc_AttributeError,
                         "process %R has unset gen/stack slots", proc);
            return -1;
        }
    }
    else {
        PyObject *done = PyObject_GetAttr(proc, s_done);
        if (done == NULL)
            return -1;
        int is_done = PyObject_IsTrue(done);
        Py_DECREF(done);
        if (is_done < 0)
            return -1;
        if (is_done)
            return 0;
        gen = PyObject_GetAttr(proc, s_gen);
        if (gen == NULL)
            return -1;
        stack = PyObject_GetAttr(proc, s_stack);
        if (stack == NULL) {
            Py_DECREF(gen);
            return -1;
        }
    }
    PyObject *value = Py_NewRef(value_in);
    PyObject *exc = (exc_in != NULL && exc_in != Py_None)
        ? Py_NewRef(exc_in) : NULL;
    int retcode = -1;

    for (;;) {
        PyObject *cmd = NULL;
        PyObject *retval = NULL;   /* owned iff the generator returned */
        int finished = 0;

        if (exc != NULL) {
            PyObject *res = PyObject_CallMethodOneArg(gen, s_throw, exc);
            Py_CLEAR(exc);
            if (res != NULL) {
                cmd = res;
            }
            else if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
                PyObject *t, *v, *tb;
                PyErr_Fetch(&t, &v, &tb);
                PyErr_NormalizeException(&t, &v, &tb);
                retval = v ? PyObject_GetAttr(v, s_value) : Py_NewRef(Py_None);
                Py_XDECREF(t);
                Py_XDECREF(v);
                Py_XDECREF(tb);
                if (retval == NULL)
                    goto bail;
                finished = 1;
            }
            /* other exceptions: handled by the !cmd branch below */
        }
        else {
            PyObject *res;
            PySendResult sr = PyIter_Send(gen, value, &res);
            if (sr == PYGEN_NEXT) {
                cmd = res;
            }
            else if (sr == PYGEN_RETURN) {
                retval = res;
                finished = 1;
            }
            /* PYGEN_ERROR: handled below */
        }

        if (finished) {
            PyObject *caller = list_pop_last(stack);
            if (caller != NULL) {
                /* inner coroutine returned: resume its caller inline */
                if (proc_set_gen(proc, fast, caller) < 0) {
                    Py_DECREF(caller);
                    Py_DECREF(retval);
                    goto bail;
                }
                Py_SETREF(gen, caller);
                Py_SETREF(value, retval);
                continue;
            }
            if (PyErr_Occurred()) {
                Py_DECREF(retval);
                goto bail;
            }
            int fr = proc_finish(self, proc, retval);
            Py_DECREF(retval);
            if (fr < 0)
                goto bail;
            if (PySet_Discard(self->active, proc) < 0)
                goto bail;
            retcode = 0;
            goto bail;
        }

        if (cmd == NULL) {
            /* the generator raised: propagate into the caller (its
             * try/finally must run) or fail the process */
            PyObject *t, *v, *tb;
            PyErr_Fetch(&t, &v, &tb);
            PyErr_NormalizeException(&t, &v, &tb);
            if (tb != NULL && v != NULL)
                PyException_SetTraceback(v, tb);
            PyObject *caller = list_pop_last(stack);
            if (caller != NULL) {
                if (proc_set_gen(proc, fast, caller) < 0) {
                    Py_DECREF(caller);
                    Py_XDECREF(t);
                    Py_XDECREF(v);
                    Py_XDECREF(tb);
                    goto bail;
                }
                Py_SETREF(gen, caller);
                exc = v ? v : Py_NewRef(Py_None);
                Py_XDECREF(t);
                Py_XDECREF(tb);
                continue;
            }
            if (PyErr_Occurred()) {   /* list_pop_last failed */
                Py_XDECREF(t);
                Py_XDECREF(v);
                Py_XDECREF(tb);
                goto bail;
            }
            if (proc_fail(proc, v ? v : Py_None) < 0) {
                Py_XDECREF(t);
                Py_XDECREF(v);
                Py_XDECREF(tb);
                goto bail;
            }
            (void)PySet_Discard(self->active, proc);
            PyErr_Restore(t, v, tb);   /* re-raise at top level */
            goto bail;
        }

        /* the generator yielded ``cmd`` */
        if (Py_IS_TYPE(cmd, &PyGen_Type) || Py_IS_TYPE(cmd, &Coro_Type)) {
            /* sub-call: push the caller, drive the inner generator */
            if (PyList_Append(stack, gen) < 0 ||
                    proc_set_gen(proc, fast, cmd) < 0) {
                Py_DECREF(cmd);
                goto bail;
            }
            Py_SETREF(gen, cmd);
            Py_SETREF(value, Py_NewRef(Py_None));
            continue;
        }
        if (Py_IS_TYPE(cmd, g_TimeoutType)) {
            /* inlined Timeout._arm */
            PyObject *delay = PyObject_GetAttr(cmd, s_delay);
            if (delay == NULL) {
                Py_DECREF(cmd);
                goto bail;
            }
            if (PyLong_CheckExact(delay)) {
                int overflow = 0;
                long long d = PyLong_AsLongLongAndOverflow(delay, &overflow);
                if (d == -1 && !overflow && PyErr_Occurred()) {
                    Py_DECREF(delay);
                    Py_DECREF(cmd);
                    goto bail;
                }
                if (!overflow && d >= 0) {
                    PyObject *rn = fast ? Py_XNewRef(SLOT(proc, off_p_rn))
                                        : NULL;
                    if (rn == NULL)
                        rn = PyObject_GetAttr(proc, s_rn);
                    if (rn == NULL) {
                        Py_DECREF(delay);
                        Py_DECREF(cmd);
                        goto bail;
                    }
                    int r = (d > 0)
                        ? push_future(self, self->now + d, rn)
                        : ring_push(self->ring, rn);
                    Py_DECREF(rn);
                    Py_DECREF(delay);
                    Py_DECREF(cmd);
                    if (r < 0)
                        goto bail;
                    retcode = 0;
                    goto bail;
                }
                if (!overflow) {
                    /* negative delay: same error schedule() raises */
                    PyErr_Format(g_SimulationError,
                                 "negative delay %R", delay);
                    Py_DECREF(delay);
                    Py_DECREF(cmd);
                    goto bail;
                }
            }
            Py_DECREF(delay);
            /* non-int/overflowing delay: generic _arm path below */
        }
        if (g_fast) {
            /* Exact-type replicas of the hot ``_arm`` bodies.  Any
             * missing slot or unexpected referent type falls through to
             * the generic attribute-protocol path below, which runs the
             * Python ``_arm`` unchanged. */
            PyTypeObject *ct = Py_TYPE(cmd);
            if (ct == g_WaitType || ct == g_GateWaitType) {
                /* Wait/GateWait: already fired/open resumes now with the
                 * stored value, otherwise park on the waiter list */
                int is_wait = (ct == g_WaitType);
                PyObject *src = SLOT(cmd,
                                     is_wait ? off_w_signal : off_gw_gate);
                if (src != NULL &&
                        Py_IS_TYPE(src, is_wait ? g_SignalType : g_GateType)) {
                    PyObject *waiters = SLOT(
                        src, is_wait ? off_s_waiters : off_g_waiters);
                    PyObject *val = SLOT(
                        src, is_wait ? off_s_value : off_g_value);
                    if (waiters != NULL && PyList_CheckExact(waiters)
                            && val != NULL) {
                        int fired = slot_truth(SLOT(
                            src, is_wait ? off_s_fired : off_g_open));
                        if (fired < 0) {
                            Py_DECREF(cmd);
                            goto bail;
                        }
                        int r = fired ? push_resume(self, proc, val)
                                      : PyList_Append(waiters, proc);
                        Py_DECREF(cmd);
                        if (r < 0)
                            goto bail;
                        retcode = 0;
                        goto bail;
                    }
                }
            }
            else if (ct == g_JoinType) {
                PyObject *target = SLOT(cmd, off_j_target);
                if (target != NULL && Py_IS_TYPE(target, g_ProcessType)) {
                    PyObject *waiters = SLOT(target, off_p_waiters);
                    PyObject *res = SLOT(target, off_p_result);
                    if (waiters != NULL && PyList_CheckExact(waiters)
                            && res != NULL) {
                        int done = slot_truth(SLOT(target, off_p_done));
                        if (done < 0) {
                            Py_DECREF(cmd);
                            goto bail;
                        }
                        int r = done ? push_resume(self, proc, res)
                                     : PyList_Append(waiters, proc);
                        Py_DECREF(cmd);
                        if (r < 0)
                            goto bail;
                        retcode = 0;
                        goto bail;
                    }
                }
            }
            else if (ct == g_AcquireType) {
                PyObject *res = SLOT(cmd, off_a_resource);
                if (res != NULL && Py_IS_TYPE(res, g_ResourceType)) {
                    PyObject *grants = SLOT(res, off_r_grants);
                    PyObject *queue = SLOT(res, off_r_queue);
                    if (grants != NULL && queue != NULL) {
                        /* release() needs the owning sim back */
                        slot_store(res, off_r_sim,
                                   Py_NewRef((PyObject *)self));
                        int busy = slot_truth(SLOT(res, off_r_busy));
                        if (busy < 0) {
                            Py_DECREF(cmd);
                            goto bail;
                        }
                        if (!busy) {
                            PyObject *ng = PyNumber_Add(grants, g_one);
                            if (ng == NULL) {
                                Py_DECREF(cmd);
                                goto bail;
                            }
                            PyObject *acq = PyLong_FromLongLong(self->now);
                            if (acq == NULL) {
                                Py_DECREF(ng);
                                Py_DECREF(cmd);
                                goto bail;
                            }
                            slot_store(res, off_r_busy, Py_NewRef(Py_True));
                            slot_store(res, off_r_grants, ng);
                            slot_store(res, off_r_acquired, acq);
                            if (push_resume(self, proc, Py_None) < 0) {
                                Py_DECREF(cmd);
                                goto bail;
                            }
                        }
                        else {
                            PyObject *r = PyObject_CallMethodOneArg(
                                queue, s_append, proc);
                            if (r == NULL) {
                                Py_DECREF(cmd);
                                goto bail;
                            }
                            Py_DECREF(r);
                        }
                        Py_DECREF(cmd);
                        retcode = 0;
                        goto bail;
                    }
                }
            }
            else if (ct == g_QueueGetType) {
                PyObject *q = SLOT(cmd, off_qg_queue);
                if (q != NULL && Py_IS_TYPE(q, g_FifoQueueType)) {
                    PyObject *items = SLOT(q, off_fq_items);
                    PyObject *getters = SLOT(q, off_fq_getters);
                    if (items != NULL && getters != NULL) {
                        int nonempty = PyObject_IsTrue(items);
                        if (nonempty < 0) {
                            Py_DECREF(cmd);
                            goto bail;
                        }
                        if (nonempty) {
                            PyObject *item = PyObject_CallMethodNoArgs(
                                items, s_popleft);
                            if (item == NULL) {
                                Py_DECREF(cmd);
                                goto bail;
                            }
                            int r = push_resume(self, proc, item);
                            Py_DECREF(item);
                            if (r < 0) {
                                Py_DECREF(cmd);
                                goto bail;
                            }
                        }
                        else {
                            PyObject *r = PyObject_CallMethodOneArg(
                                getters, s_append, proc);
                            if (r == NULL) {
                                Py_DECREF(cmd);
                                goto bail;
                            }
                            Py_DECREF(r);
                        }
                        Py_DECREF(cmd);
                        retcode = 0;
                        goto bail;
                    }
                }
            }
        }
        {
            PyObject *r = PyObject_CallMethodObjArgs(
                cmd, s_arm, (PyObject *)self, proc, NULL);
            if (r == NULL) {
                if (PyErr_ExceptionMatches(PyExc_AttributeError)) {
                    PyErr_Clear();
                    PyObject *pname = PyObject_GetAttr(proc, s_name);
                    if (pname != NULL) {
                        PyErr_Format(
                            g_SimulationError,
                            "process %R yielded non-primitive %R; yield "
                            "Timeout/Wait/Acquire/... or use 'yield from' "
                            "for sub-coroutines", pname, cmd);
                        Py_DECREF(pname);
                    }
                }
                Py_DECREF(cmd);
                goto bail;
            }
            Py_DECREF(r);
            Py_DECREF(cmd);
            retcode = 0;
            goto bail;
        }
    }

bail:
    Py_XDECREF(exc);
    Py_DECREF(value);
    Py_DECREF(gen);
    Py_DECREF(stack);
    return retcode;
}

/* the Python-visible ``sim._resume(proc, value, exc=None)`` */
static PyObject *
sim_resume_py(PyObject *self_obj, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2 || nargs > 3) {
        PyErr_SetString(PyExc_TypeError,
                        "_resume expects (proc, value[, exc])");
        return NULL;
    }
    SimObject *self = (SimObject *)self_obj;
    PyObject *exc = (nargs == 3) ? args[2] : NULL;
    if (resume_impl(self, args[0], args[1], exc) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef resume_def = {
    "_resume", (PyCFunction)(void (*)(void))sim_resume_py,
    METH_FASTCALL,
    "Advance ``proc`` by one step, interpreting what it yields.",
};

/* ---- scheduling methods ---- */

static PyObject *
build_event(PyObject *fn, PyObject *const *rest, Py_ssize_t nrest)
{
    PyObject *args_t = PyTuple_New(nrest);
    if (args_t == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < nrest; i++)
        PyTuple_SET_ITEM(args_t, i, Py_NewRef(rest[i]));
    PyObject *ev = PyTuple_Pack(2, fn, args_t);
    Py_DECREF(args_t);
    return ev;
}

/* classify a delay/when operand relative to ``ref``:
 * 1 = greater, 0 = equal, -1 = less, -2 = error */
static int
cmp_to_ref(PyObject *obj, long long ref)
{
    if (PyLong_CheckExact(obj)) {
        int overflow = 0;
        long long v = PyLong_AsLongLongAndOverflow(obj, &overflow);
        if (v == -1 && !overflow && PyErr_Occurred())
            return -2;
        if (overflow)
            return overflow > 0 ? 1 : -1;
        return (v > ref) ? 1 : (v == ref) ? 0 : -1;
    }
    PyObject *ref_obj = PyLong_FromLongLong(ref);
    if (ref_obj == NULL)
        return -2;
    int eq = PyObject_RichCompareBool(obj, ref_obj, Py_EQ);
    if (eq < 0) {
        Py_DECREF(ref_obj);
        return -2;
    }
    if (eq) {
        Py_DECREF(ref_obj);
        return 0;
    }
    int gt = PyObject_RichCompareBool(obj, ref_obj, Py_GT);
    Py_DECREF(ref_obj);
    if (gt < 0)
        return -2;
    return gt ? 1 : -1;
}

static long long
as_longlong(PyObject *obj, int *err)
{
    *err = 0;
    if (PyLong_CheckExact(obj)) {
        long long v = PyLong_AsLongLong(obj);
        if (v == -1 && PyErr_Occurred())
            *err = 1;
        return v;
    }
    PyObject *as_int = PyNumber_Long(obj);
    if (as_int == NULL) {
        *err = 1;
        return -1;
    }
    long long v = PyLong_AsLongLong(as_int);
    Py_DECREF(as_int);
    if (v == -1 && PyErr_Occurred())
        *err = 1;
    return v;
}

static PyObject *
sim_schedule(SimObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule expects (delay, fn, *args)");
        return NULL;
    }
    PyObject *delay = args[0];
    int c = cmp_to_ref(delay, 0);
    if (c == -2)
        return NULL;
    if (c < 0) {
        PyErr_Format(g_SimulationError, "negative delay %R", delay);
        return NULL;
    }
    PyObject *ev = build_event(args[1], args + 2, nargs - 2);
    if (ev == NULL)
        return NULL;
    int r;
    if (c == 0) {
        r = ring_push(self->ring, ev);
    }
    else {
        int err;
        long long d = as_longlong(delay, &err);
        if (err) {
            Py_DECREF(ev);
            return NULL;
        }
        r = push_future(self, self->now + d, ev);
    }
    Py_DECREF(ev);
    if (r < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
sim_schedule_at(SimObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at expects (when, fn, *args)");
        return NULL;
    }
    PyObject *when = args[0];
    int c = cmp_to_ref(when, self->now);
    if (c == -2)
        return NULL;
    if (c < 0) {
        PyErr_Format(g_SimulationError,
                     "cannot schedule in the past (%S < %lld)",
                     when, self->now);
        return NULL;
    }
    PyObject *ev = build_event(args[1], args + 2, nargs - 2);
    if (ev == NULL)
        return NULL;
    int r;
    if (c == 0) {
        r = ring_push(self->ring, ev);
    }
    else {
        int err;
        long long w = as_longlong(when, &err);
        if (err) {
            Py_DECREF(ev);
            return NULL;
        }
        r = push_future(self, w, ev);
    }
    Py_DECREF(ev);
    if (r < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
sim_push_future(SimObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "_push_future expects (when, ev)");
        return NULL;
    }
    int err;
    long long when = as_longlong(args[0], &err);
    if (err)
        return NULL;
    if (push_future(self, when, args[1]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* delivery-phase push shared by the method below and the compiled
 * fabric send: bucket registration plus a ``(key, ev)`` phase entry */
static int
push_delivery_c(SimObject *self, long long when, PyObject *key, PyObject *ev)
{
    if (when <= self->now) {
        PyErr_Format(g_SimulationError,
                     "delivery must be in the future (%lld <= %lld)",
                     when, self->now);
        return -1;
    }
    PyObject *when_obj = PyLong_FromLongLong(when);
    if (when_obj == NULL)
        return -1;
    /* ensure a regular bucket exists for ``when`` even if it stays
     * empty, so the run loop's timestamp pop finds it */
    PyObject *bucket = PyDict_GetItemWithError(self->buckets, when_obj);
    if (bucket == NULL) {
        if (PyErr_Occurred()) {
            Py_DECREF(when_obj);
            return -1;
        }
        bucket = list_pop_last(self->pool);
        if (bucket == NULL) {
            if (PyErr_Occurred()) {
                Py_DECREF(when_obj);
                return -1;
            }
            bucket = PyList_New(0);
            if (bucket == NULL) {
                Py_DECREF(when_obj);
                return -1;
            }
        }
        if (PyDict_SetItem(self->buckets, when_obj, bucket) < 0 ||
                heap_push(self, when) < 0) {
            Py_DECREF(bucket);
            Py_DECREF(when_obj);
            return -1;
        }
        Py_DECREF(bucket);
    }
    PyObject *phase = PyDict_GetItemWithError(self->phase, when_obj);
    if (phase == NULL) {
        if (PyErr_Occurred()) {
            Py_DECREF(when_obj);
            return -1;
        }
        phase = PyList_New(0);
        if (phase == NULL) {
            Py_DECREF(when_obj);
            return -1;
        }
        if (PyDict_SetItem(self->phase, when_obj, phase) < 0) {
            Py_DECREF(phase);
            Py_DECREF(when_obj);
            return -1;
        }
        Py_DECREF(phase);
        phase = PyDict_GetItemWithError(self->phase, when_obj);
        if (phase == NULL) {
            Py_DECREF(when_obj);
            return -1;
        }
    }
    Py_DECREF(when_obj);
    PyObject *entry = PyTuple_Pack(2, key, ev);
    if (entry == NULL)
        return -1;
    int r = PyList_Append(phase, entry);
    Py_DECREF(entry);
    return r;
}

static PyObject *
sim_push_delivery(SimObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "_push_delivery expects (when, key, ev)");
        return NULL;
    }
    int err;
    long long when = as_longlong(args[0], &err);
    if (err)
        return NULL;
    if (push_delivery_c(self, when, args[1], args[2]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ---- processes ---- */

/* Process.__init__ replica: allocate on the Python Process type and
 * fill its slots directly, skipping the interpreter frame. */
static PyObject *
make_process(SimObject *self, PyObject *gen, PyObject *name)
{
    if (!g_fast)
        return PyObject_CallFunctionObjArgs(
            g_Process, gen, name, (PyObject *)self, NULL);
    PyObject *proc = g_ProcessType->tp_alloc(g_ProcessType, 0);
    if (proc == NULL)
        return NULL;
    int named = PyObject_IsTrue(name);
    if (named < 0)
        goto fail;
    PyObject *pname;
    if (named) {
        pname = Py_NewRef(name);
    }
    else {
        pname = PyObject_GetAttr(gen, s_dunder_name);
        if (pname == NULL) {
            PyErr_Clear();
            pname = PyUnicode_FromString("process");
            if (pname == NULL)
                goto fail;
        }
    }
    PyObject *stack = PyList_New(0);
    PyObject *waiters = PyList_New(0);
    if (stack == NULL || waiters == NULL) {
        Py_XDECREF(stack);
        Py_XDECREF(waiters);
        Py_DECREF(pname);
        goto fail;
    }
    SLOT(proc, off_p_gen) = Py_NewRef(gen);
    SLOT(proc, off_p_stack) = stack;
    SLOT(proc, off_p_name) = pname;
    SLOT(proc, off_p_sim) = Py_NewRef((PyObject *)self);
    SLOT(proc, off_p_done) = Py_NewRef(Py_False);
    SLOT(proc, off_p_result) = Py_NewRef(Py_None);
    SLOT(proc, off_p_error) = Py_NewRef(Py_None);
    SLOT(proc, off_p_waiters) = waiters;
    PyObject *inner = PyTuple_Pack(2, proc, Py_None);
    if (inner == NULL)
        goto fail;
    PyObject *rn = PyTuple_Pack(2, self->resume_cb, inner);
    Py_DECREF(inner);
    if (rn == NULL)
        goto fail;
    SLOT(proc, off_p_rn) = rn;
    return proc;
fail:
    Py_DECREF(proc);
    return NULL;
}

static PyObject *
sim_spawn(SimObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"gen", "name", NULL};
    PyObject *gen, *name = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|O", kwlist,
                                     &gen, &name))
        return NULL;
    PyObject *proc = make_process(self, gen, name ? name : g_empty_str);
    if (proc == NULL)
        return NULL;
    if (PySet_Add(self->active, proc) < 0) {
        Py_DECREF(proc);
        return NULL;
    }
    /* start after the current event finishes (spawn is not reentrant) */
    PyObject *rn = (g_fast && Py_IS_TYPE(proc, g_ProcessType))
        ? Py_XNewRef(SLOT(proc, off_p_rn)) : NULL;
    if (rn == NULL)
        rn = PyObject_GetAttr(proc, s_rn);
    if (rn == NULL || ring_push(self->ring, rn) < 0) {
        Py_XDECREF(rn);
        Py_DECREF(proc);
        return NULL;
    }
    Py_DECREF(rn);
    return proc;
}

/* ---- main loop ---- */

static int
run_core(SimObject *self, PyObject *until_obj, PyObject *maxev_obj)
{
    if (self->running) {
        PyErr_SetString(g_SimulationError, "run() is not reentrant");
        return -1;
    }
    int have_until = (until_obj != NULL && until_obj != Py_None);
    long long until = 0;
    if (have_until) {
        int err;
        until = as_longlong(until_obj, &err);
        if (err)
            return -1;
    }
    long long max_ev = -1;   /* -1 == unbounded */
    if (maxev_obj != NULL && maxev_obj != Py_None) {
        int err;
        max_ev = as_longlong(maxev_obj, &err);
        if (err)
            return -1;
        if (max_ev < 0)
            max_ev = -1;
    }
    self->running = 1;
    long long dispatched = 0;
    long long base = self->events_dispatched;
    int fail = 0;
    RingObject *ring = self->ring;

    for (;;) {
        while (ring->len) {
            if (dispatched == max_ev) {
                PyErr_Format(g_SimulationError,
                             "exceeded max_events=%S", maxev_obj);
                fail = 1;
                goto done;
            }
            PyObject *ev = ring_popleft(ring);
            if (!PyTuple_CheckExact(ev) || PyTuple_GET_SIZE(ev) != 2) {
                Py_DECREF(ev);
                PyErr_SetString(PyExc_TypeError,
                                "event must be a (fn, args) tuple");
                fail = 1;
                goto done;
            }
            PyObject *fn = PyTuple_GET_ITEM(ev, 0);
            PyObject *fargs = PyTuple_GET_ITEM(ev, 1);
            if (self->trace) {
                PyObject *desc = PyObject_GetAttr(fn, s_qualname);
                if (desc == NULL) {
                    PyErr_Clear();
                    desc = PyObject_Repr(fn);
                }
                PyObject *now_obj = desc ? PyLong_FromLongLong(self->now)
                                         : NULL;
                PyObject *entry = now_obj ? PyTuple_Pack(2, now_obj, desc)
                                          : NULL;
                int r = entry ? PyList_Append(self->trace_log, entry) : -1;
                Py_XDECREF(entry);
                Py_XDECREF(now_obj);
                Py_XDECREF(desc);
                if (r < 0) {
                    Py_DECREF(ev);
                    fail = 1;
                    goto done;
                }
            }
            int ok;
            if (fn == self->resume_cb && PyTuple_CheckExact(fargs) &&
                    PyTuple_GET_SIZE(fargs) == 2) {
                ok = resume_impl(self, PyTuple_GET_ITEM(fargs, 0),
                                 PyTuple_GET_ITEM(fargs, 1), NULL);
            }
            else {
                PyObject *res = PyObject_Call(fn, fargs, NULL);
                ok = (res == NULL) ? -1 : 0;
                Py_XDECREF(res);
            }
            Py_DECREF(ev);
            if (ok < 0) {
                fail = 1;
                goto done;
            }
            dispatched++;
        }
        if (self->heap_len == 0)
            break;
        /* events remain: the bound is checked before looking at
         * ``until`` so a capped run with work pending always raises */
        if (dispatched == max_ev) {
            PyErr_Format(g_SimulationError,
                         "exceeded max_events=%S", maxev_obj);
            fail = 1;
            goto done;
        }
        long long when = self->heap[0];
        if (have_until && when > until) {
            self->now = until;
            break;
        }
        heap_pop(self);
        self->now = when;
        PyObject *when_obj = PyLong_FromLongLong(when);
        if (when_obj == NULL) {
            fail = 1;
            goto done;
        }
        PyObject *phase = PyDict_GetItemWithError(self->phase, when_obj);
        if (phase != NULL) {
            /* delivery phase: canonical (src, seq) arrival order */
            Py_INCREF(phase);
            if (PyDict_DelItem(self->phase, when_obj) < 0 ||
                    (PyList_GET_SIZE(phase) > 1 && PyList_Sort(phase) < 0)) {
                Py_DECREF(phase);
                Py_DECREF(when_obj);
                fail = 1;
                goto done;
            }
            Py_ssize_t pn = PyList_GET_SIZE(phase);
            for (Py_ssize_t i = 0; i < pn; i++) {
                PyObject *entry = PyList_GET_ITEM(phase, i);
                if (ring_push(ring, PyTuple_GET_ITEM(entry, 1)) < 0) {
                    Py_DECREF(phase);
                    Py_DECREF(when_obj);
                    fail = 1;
                    goto done;
                }
            }
            Py_DECREF(phase);
        }
        else if (PyErr_Occurred()) {
            Py_DECREF(when_obj);
            fail = 1;
            goto done;
        }
        PyObject *bucket = PyDict_GetItemWithError(self->buckets, when_obj);
        if (bucket == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_SystemError,
                                "timestamp on heap without bucket");
            Py_DECREF(when_obj);
            fail = 1;
            goto done;
        }
        Py_INCREF(bucket);
        if (PyDict_DelItem(self->buckets, when_obj) < 0) {
            Py_DECREF(bucket);
            Py_DECREF(when_obj);
            fail = 1;
            goto done;
        }
        Py_DECREF(when_obj);
        Py_ssize_t bn = PyList_GET_SIZE(bucket);
        for (Py_ssize_t i = 0; i < bn; i++) {
            if (ring_push(ring, PyList_GET_ITEM(bucket, i)) < 0) {
                Py_DECREF(bucket);
                fail = 1;
                goto done;
            }
        }
        /* clear and recycle the drained bucket */
        if (PyList_SetSlice(bucket, 0, bn, NULL) < 0 ||
                PyList_Append(self->pool, bucket) < 0) {
            Py_DECREF(bucket);
            fail = 1;
            goto done;
        }
        Py_DECREF(bucket);
    }

done:
    self->running = 0;
    self->events_dispatched = base + dispatched;
    return fail ? -1 : 0;
}

static PyObject *
sim_run(SimObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until", "max_events", NULL};
    PyObject *until_obj = Py_None, *maxev_obj = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OO", kwlist,
                                     &until_obj, &maxev_obj))
        return NULL;
    if (run_core(self, until_obj, maxev_obj) < 0)
        return NULL;
    return PyLong_FromLongLong(self->now);
}

static PyObject *
sim_run_process(SimObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"gen", "name", "max_events", NULL};
    PyObject *gen, *name = NULL, *maxev_obj = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|OO", kwlist,
                                     &gen, &name, &maxev_obj))
        return NULL;
    PyObject *name_obj = name ? Py_NewRef(name)
                              : PyUnicode_FromString("main");
    if (name_obj == NULL)
        return NULL;
    PyObject *spawn_args = PyTuple_Pack(2, gen, name_obj);
    if (spawn_args == NULL) {
        Py_DECREF(name_obj);
        return NULL;
    }
    PyObject *proc = sim_spawn(self, spawn_args, NULL);
    Py_DECREF(spawn_args);
    if (proc == NULL) {
        Py_DECREF(name_obj);
        return NULL;
    }
    if (run_core(self, Py_None, maxev_obj) < 0) {
        Py_DECREF(name_obj);
        Py_DECREF(proc);
        return NULL;
    }
    PyObject *done = PyObject_GetAttr(proc, s_done);
    if (done == NULL) {
        Py_DECREF(name_obj);
        Py_DECREF(proc);
        return NULL;
    }
    int is_done = PyObject_IsTrue(done);
    Py_DECREF(done);
    if (is_done <= 0) {
        if (is_done == 0)
            PyErr_Format(
                g_SimulationError,
                "deadlock: process %R still blocked at t=%lld with %zd "
                "live processes", name_obj, self->now,
                PySet_GET_SIZE(self->active));
        Py_DECREF(name_obj);
        Py_DECREF(proc);
        return NULL;
    }
    Py_DECREF(name_obj);
    PyObject *result = PyObject_GetAttr(proc, s_result);
    Py_DECREF(proc);
    return result;
}

/* ---- diagnostics ---- */

static Py_ssize_t
dict_values_total_len(PyObject *dict)
{
    Py_ssize_t total = 0;
    Py_ssize_t pos = 0;
    PyObject *key, *value;
    while (PyDict_Next(dict, &pos, &key, &value))
        total += PyList_GET_SIZE(value);
    return total;
}

static PyObject *
sim_pending_events(SimObject *self, PyObject *Py_UNUSED(ignored))
{
    Py_ssize_t total = self->ring->len
        + dict_values_total_len(self->buckets)
        + dict_values_total_len(self->phase);
    return PyLong_FromSsize_t(total);
}

static PyObject *
sim_next_event_time(SimObject *self, PyObject *Py_UNUSED(ignored))
{
    if (self->ring->len)
        return PyLong_FromLongLong(self->now);
    if (self->heap_len)
        return PyLong_FromLongLong(self->heap[0]);
    Py_RETURN_NONE;
}

/* ---- attribute plumbing ---- */

static PyObject *
sim_get_now(SimObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->now);
}

static int
sim_set_now(SimObject *self, PyObject *value, void *Py_UNUSED(closure))
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete now");
        return -1;
    }
    int err;
    long long v = as_longlong(value, &err);
    if (err)
        return -1;
    self->now = v;
    return 0;
}

static PyObject *
sim_get_events_dispatched(SimObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->events_dispatched);
}

static int
sim_set_events_dispatched(SimObject *self, PyObject *value,
                          void *Py_UNUSED(closure))
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError,
                        "cannot delete events_dispatched");
        return -1;
    }
    int err;
    long long v = as_longlong(value, &err);
    if (err)
        return -1;
    self->events_dispatched = v;
    return 0;
}

static PyObject *
sim_get_resume(SimObject *self, void *Py_UNUSED(closure))
{
    return Py_NewRef(self->resume_cb);
}

static PyGetSetDef Sim_getset[] = {
    {"now", (getter)sim_get_now, (setter)sim_set_now,
     "current simulated time in CPU cycles", NULL},
    {"events_dispatched", (getter)sim_get_events_dispatched,
     (setter)sim_set_events_dispatched,
     "total events dispatched across all run() calls", NULL},
    {"_resume", (getter)sim_get_resume, NULL,
     "the kernel's stable resume callable (identity matters: "
     "``proc._rn`` tuples all reference this one object)", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef Sim_members[] = {
    {"trace", T_BOOL, offsetof(SimObject, trace), 0,
     "whether dispatches are appended to trace_log"},
    {"trace_log", T_OBJECT_EX, offsetof(SimObject, trace_log), READONLY,
     "list of (time, description) dispatch records (trace=True only)"},
    {"active_processes", T_OBJECT_EX, offsetof(SimObject, active), READONLY,
     "live (unfinished) processes, for leak diagnostics in tests"},
    {"_ring", T_OBJECT_EX, offsetof(SimObject, ring), READONLY,
     "same-cycle FIFO dispatch ring (append/__len__/__bool__)"},
    {NULL, 0, 0, 0, NULL},
};

static PyMethodDef Sim_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))sim_schedule, METH_FASTCALL,
     "schedule(delay, fn, *args): run fn(*args) delay cycles from now."},
    {"schedule_at", (PyCFunction)(void (*)(void))sim_schedule_at,
     METH_FASTCALL,
     "schedule_at(when, fn, *args): run fn(*args) at absolute time when."},
    {"_push_future", (PyCFunction)(void (*)(void))sim_push_future,
     METH_FASTCALL,
     "_push_future(when, ev): append ev to the bucket at future time when."},
    {"_push_delivery", (PyCFunction)(void (*)(void))sim_push_delivery,
     METH_FASTCALL,
     "_push_delivery(when, key, ev): queue a delivery-phase event."},
    {"spawn", (PyCFunction)(void (*)(void))sim_spawn,
     METH_VARARGS | METH_KEYWORDS,
     "spawn(gen, name=''): create a Process and start it this cycle."},
    {"run", (PyCFunction)(void (*)(void))sim_run,
     METH_VARARGS | METH_KEYWORDS,
     "run(until=None, max_events=None): dispatch until drained/bounded."},
    {"run_process", (PyCFunction)(void (*)(void))sim_run_process,
     METH_VARARGS | METH_KEYWORDS,
     "run_process(gen, name='main', max_events=None): spawn, run, return "
     "the process result (raises on deadlock)."},
    {"pending_events", (PyCFunction)sim_pending_events, METH_NOARGS,
     "Number of events currently queued (diagnostic)."},
    {"next_event_time", (PyCFunction)sim_next_event_time, METH_NOARGS,
     "Earliest queued event time, or None if drained."},
    {NULL, NULL, 0, NULL},
};

static int
Sim_init(SimObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"trace", NULL};
    int trace = 0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|p", kwlist, &trace))
        return -1;
    self->now = 0;
    self->events_dispatched = 0;
    self->running = 0;
    self->trace = (char)trace;
    RingObject *ring = ring_new();
    if (ring == NULL)
        return -1;
    Py_XSETREF(self->ring, ring);
    PyObject *tmp;
    tmp = PyDict_New();
    if (tmp == NULL)
        return -1;
    Py_XSETREF(self->buckets, tmp);
    tmp = PyDict_New();
    if (tmp == NULL)
        return -1;
    Py_XSETREF(self->phase, tmp);
    tmp = PyList_New(0);
    if (tmp == NULL)
        return -1;
    Py_XSETREF(self->pool, tmp);
    tmp = PyList_New(0);
    if (tmp == NULL)
        return -1;
    Py_XSETREF(self->trace_log, tmp);
    tmp = PySet_New(NULL);
    if (tmp == NULL)
        return -1;
    Py_XSETREF(self->active, tmp);
    tmp = PyCFunction_New(&resume_def, (PyObject *)self);
    if (tmp == NULL)
        return -1;
    Py_XSETREF(self->resume_cb, tmp);
    self->heap_len = 0;
    return 0;
}

static int
Sim_traverse(SimObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->ring);
    Py_VISIT(self->buckets);
    Py_VISIT(self->phase);
    Py_VISIT(self->pool);
    Py_VISIT(self->trace_log);
    Py_VISIT(self->active);
    Py_VISIT(self->resume_cb);
    return 0;
}

static int
Sim_clear(SimObject *self)
{
    Py_CLEAR(self->ring);
    Py_CLEAR(self->buckets);
    Py_CLEAR(self->phase);
    Py_CLEAR(self->pool);
    Py_CLEAR(self->trace_log);
    Py_CLEAR(self->active);
    Py_CLEAR(self->resume_cb);
    return 0;
}

static void
Sim_dealloc(SimObject *self)
{
    PyObject_GC_UnTrack(self);
    Sim_clear(self);
    PyMem_Free(self->heap);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject Sim_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim.backends._accel_core.AccelSimulator",
    .tp_basicsize = sizeof(SimObject),
    .tp_dealloc = (destructor)Sim_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled deterministic discrete-event simulation kernel "
              "(byte-identical to repro.sim.kernel.Simulator).",
    .tp_traverse = (traverseproc)Sim_traverse,
    .tp_clear = (inquiry)Sim_clear,
    .tp_methods = Sim_methods,
    .tp_members = Sim_members,
    .tp_getset = Sim_getset,
    .tp_init = (initproc)Sim_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* model fast paths (fabric send/deliver, word updates, egress waves)  */
/* ------------------------------------------------------------------ */

/* non-raising exact-int extraction; returns 0 on success */
static int
ll_of(PyObject *obj, long long *out)
{
    if (obj == NULL || !PyLong_CheckExact(obj))
        return -1;
    int overflow = 0;
    long long v = PyLong_AsLongLongAndOverflow(obj, &overflow);
    if (overflow)
        return -1;
    if (v == -1 && PyErr_Occurred()) {
        PyErr_Clear();
        return -1;
    }
    *out = v;
    return 0;
}

/* counter[key] += n on a collections.Counter — a dict subclass that
 * does not override item access, and whose __missing__ reads as 0,
 * which PyDict_GetItemWithError's NULL result replicates */
static int
counter_add(PyObject *counter, PyObject *key, long long n)
{
    PyObject *cur = PyDict_GetItemWithError(counter, key);
    if (cur == NULL && PyErr_Occurred())
        return -1;
    PyObject *nv = NULL;
    long long base;
    if (cur == NULL) {
        nv = PyLong_FromLongLong(n);
    }
    else if (ll_of(cur, &base) == 0) {
        nv = PyLong_FromLongLong(base + n);
    }
    else {
        PyObject *incr = PyLong_FromLongLong(n);
        if (incr == NULL)
            return -1;
        nv = PyNumber_Add(cur, incr);
        Py_DECREF(incr);
    }
    if (nv == NULL)
        return -1;
    int r = PyDict_SetItem(counter, key, nv);
    Py_DECREF(nv);
    return r;
}

/* Signal.fire body for a *known-unfired* exact Signal whose waiter
 * list is an exact list (the caller verified both) */
static int
signal_fire_commit(SimObject *sim, PyObject *sig, PyObject *value)
{
    slot_store(sig, off_s_fired, Py_NewRef(Py_True));
    slot_store(sig, off_s_value, Py_NewRef(value));
    PyObject *waiters = SLOT(sig, off_s_waiters);
    if (waiters != NULL && PyList_CheckExact(waiters)
            && PyList_GET_SIZE(waiters) > 0) {
        PyObject *empty = PyList_New(0);
        if (empty == NULL)
            return -1;
        SLOT(sig, off_s_waiters) = empty;   /* we now own ``waiters`` */
        Py_ssize_t n = PyList_GET_SIZE(waiters);
        for (Py_ssize_t i = 0; i < n; i++) {
            if (push_resume(sim, PyList_GET_ITEM(waiters, i), value) < 0) {
                Py_DECREF(waiters);
                return -1;
            }
        }
        Py_DECREF(waiters);
    }
    return 0;
}

/* Gate.pulse body for an exact Gate with an exact-list waiter list */
static int
gate_pulse_commit(SimObject *sim, PyObject *gate)
{
    PyObject *waiters = SLOT(gate, off_g_waiters);
    if (waiters != NULL && PyList_CheckExact(waiters)
            && PyList_GET_SIZE(waiters) > 0) {
        PyObject *empty = PyList_New(0);
        if (empty == NULL)
            return -1;
        SLOT(gate, off_g_waiters) = empty;
        Py_ssize_t n = PyList_GET_SIZE(waiters);
        for (Py_ssize_t i = 0; i < n; i++) {
            if (push_resume(sim, PyList_GET_ITEM(waiters, i),
                            Py_None) < 0) {
                Py_DECREF(waiters);
                return -1;
            }
        }
        Py_DECREF(waiters);
    }
    return 0;
}

/* SetAssociativeCache.apply_word_update replica (probe + patch_word +
 * word_updates).  Returns 1 applied, 0 not applied, -1 error, -2
 * precondition miss — strictly before any mutation. */
static int
cache_apply_word(PyObject *cache, long long addr, PyObject *value)
{
    long long lb, nsets, wu;
    if (ll_of(SLOT(cache, off_sc_lb), &lb) < 0 || lb <= 0 ||
            ll_of(SLOT(cache, off_sc_nsets), &nsets) < 0 || nsets <= 0 ||
            ll_of(SLOT(cache, off_sc_wu), &wu) < 0)
        return -2;
    PyObject *sets = SLOT(cache, off_sc_sets);
    if (sets == NULL || !PyDict_Check(sets))    /* defaultdict subclass */
        return -2;
    long long base = addr - addr % lb;
    PyObject *skey = PyLong_FromLongLong((base / lb) % nsets);
    if (skey == NULL)
        return -1;
    /* ``.get`` semantics: no defaultdict __missing__ on a miss */
    PyObject *entry = PyDict_GetItemWithError(sets, skey);
    Py_DECREF(skey);
    if (entry == NULL)
        return PyErr_Occurred() ? -1 : 0;
    if (!PyDict_CheckExact(entry))
        return -2;
    PyObject *bkey = PyLong_FromLongLong(base);
    if (bkey == NULL)
        return -1;
    PyObject *line = PyDict_GetItemWithError(entry, bkey);
    Py_DECREF(bkey);
    if (line == NULL)
        return PyErr_Occurred() ? -1 : 0;
    if (!Py_IS_TYPE(line, g_LineType))
        return -2;
    PyObject *state = SLOT(line, off_cl_state);
    if (state == NULL)
        return -2;
    if (state == g_InvalidState)
        return 0;
    PyObject *words = SLOT(line, off_cl_words);
    if (words == NULL || !PyDict_CheckExact(words))
        return -2;
    /* commit: words[word base] = value (no dirty bit — the home's copy
     * is the source of truth for pushed words); word_updates += 1 */
    PyObject *wkey = PyLong_FromLongLong(addr - addr % g_word_bytes);
    if (wkey == NULL)
        return -1;
    int r = PyDict_SetItem(words, wkey, value);
    Py_DECREF(wkey);
    if (r < 0)
        return -1;
    PyObject *nwu = PyLong_FromLongLong(wu + 1);
    if (nwu == NULL)
        return -1;
    slot_store(cache, off_sc_wu, nwu);
    return 1;
}

/* CacheController.on_word_update replica.  Returns 0 handled, 1 when
 * the caller must call the Python route instead (nothing mutated), -1
 * on error. */
static int
word_update_fast(SimObject *sim, PyObject *hub, PyObject *msg)
{
    PyObject *dst_cpu = SLOT(msg, off_m_dst_cpu);
    PyObject *controllers = SLOT(hub, off_h_controllers);
    if (dst_cpu == NULL || !PyLong_CheckExact(dst_cpu)
            || controllers == NULL || !PyDict_CheckExact(controllers))
        return 1;
    PyObject *ctrl = PyDict_GetItemWithError(controllers, dst_cpu);
    if (ctrl == NULL)
        return PyErr_Occurred() ? -1 : 1;
    /* subclass allowed: the accel controller adds __slots__ = () only
     * and does not override on_word_update */
    if (!PyObject_TypeCheck(ctrl, g_CtrlType))
        return 1;
    PyObject *addr_obj = SLOT(msg, off_m_addr);
    PyObject *value = SLOT(msg, off_m_value);
    long long addr;
    if (value == NULL || ll_of(addr_obj, &addr) < 0 || addr < 0)
        return 1;
    PyObject *inflight = SLOT(ctrl, off_c_inflight);
    if (inflight == NULL || !PyDict_CheckExact(inflight))
        return 1;
    long long line = addr - addr % g_line_bytes;
    PyObject *line_obj = PyLong_FromLongLong(line);
    if (line_obj == NULL)
        return -1;
    PyObject *mshr = PyDict_GetItemWithError(inflight, line_obj);
    if (mshr == NULL && PyErr_Occurred()) {
        Py_DECREF(line_obj);
        return -1;
    }
    if (mshr != NULL) {
        /* a fill is in flight: park the update on the MSHR */
        Py_DECREF(line_obj);
        if (!PyDict_CheckExact(mshr))
            return 1;
        PyObject *updates = PyDict_GetItemWithError(mshr, s_updates);
        if (updates == NULL)
            return PyErr_Occurred() ? -1 : 1;
        if (!PyList_CheckExact(updates))
            return 1;
        PyObject *pair = PyTuple_Pack(2, addr_obj, value);
        if (pair == NULL)
            return -1;
        int r = PyList_Append(updates, pair);
        Py_DECREF(pair);
        return r < 0 ? -1 : 0;
    }
    PyObject *l2 = SLOT(ctrl, off_c_l2);
    PyObject *l1 = SLOT(ctrl, off_c_l1);
    if (l2 == NULL || l1 == NULL || !Py_IS_TYPE(l2, g_CacheType)
            || !Py_IS_TYPE(l1, g_CacheType)) {
        Py_DECREF(line_obj);
        return 1;
    }
    int applied = cache_apply_word(l2, addr, value);
    if (applied == -1) {
        Py_DECREF(line_obj);
        return -1;
    }
    if (applied == -2) {
        Py_DECREF(line_obj);
        return 1;
    }
    if (applied == 0) {
        Py_DECREF(line_obj);
        return 0;
    }
    /* L2 applied — committed.  From here degraded cases must use
     * targeted generic calls (a full Python replay would re-apply). */
    int r1 = cache_apply_word(l1, addr, value);
    if (r1 == -1) {
        Py_DECREF(line_obj);
        return -1;
    }
    if (r1 == -2) {
        PyObject *res = PyObject_CallMethodObjArgs(
            l1, s_apply_word_update, addr_obj, value, NULL);
        if (res == NULL) {
            Py_DECREF(line_obj);
            return -1;
        }
        Py_DECREF(res);
    }
    PyObject *resv = SLOT(ctrl, off_c_resv);
    if (resv != NULL && resv != Py_None) {
        int eq = PyObject_RichCompareBool(resv, line_obj, Py_EQ);
        if (eq < 0) {
            Py_DECREF(line_obj);
            return -1;
        }
        if (eq)
            slot_store(ctrl, off_c_resv, Py_NewRef(Py_None));
    }
    /* _line_changed(addr): bump the line version, pulse the spin gate */
    PyObject *meta_map = SLOT(ctrl, off_c_meta);
    PyObject *meta = NULL;
    if (meta_map != NULL && PyDict_CheckExact(meta_map)) {
        meta = PyDict_GetItemWithError(meta_map, line_obj);
        if (meta == NULL && PyErr_Occurred()) {
            Py_DECREF(line_obj);
            return -1;
        }
    }
    Py_DECREF(line_obj);
    if (meta != NULL && Py_IS_TYPE(meta, g_LineMetaType)) {
        PyObject *gate = SLOT(meta, off_lm_gate);
        long long version;
        if (gate != NULL && g_fast && Py_IS_TYPE(gate, g_GateType)
                && PyList_CheckExact(SLOT(gate, off_g_waiters))
                && ll_of(SLOT(meta, off_lm_version), &version) == 0) {
            PyObject *nv = PyLong_FromLongLong(version + 1);
            if (nv == NULL)
                return -1;
            slot_store(meta, off_lm_version, nv);
            return gate_pulse_commit(sim, gate);
        }
    }
    /* meta missing (lazily created) or degenerate: one generic call */
    PyObject *res = PyObject_CallMethodObjArgs(ctrl, s_line_changed,
                                               addr_obj, NULL);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* Network._deliver fast path.  Returns 0 handled, 1 fall back to the
 * Python coding (nothing mutated), -1 error. */
static int
deliver_fast(PyObject *net, PyObject *msg)
{
    if (!g_model_fast || !Py_IS_TYPE(msg, g_MsgType))
        return 1;
    PyObject *sim_obj = PyObject_GetAttr(net, s_sim);
    if (sim_obj == NULL) {
        PyErr_Clear();
        return 1;
    }
    if (!Py_IS_TYPE(sim_obj, &Sim_Type)) {
        Py_DECREF(sim_obj);
        return 1;
    }
    SimObject *sim = (SimObject *)sim_obj;
    int rc = -1;
    PyObject *kind = SLOT(msg, off_m_kind);
    PyObject *reply_to = SLOT(msg, off_m_reply_to);
    if (kind == NULL || reply_to == NULL) {
        rc = 1;
        goto done;
    }
    if (reply_to != Py_None) {
        PyObject *is_reply = PyObject_GetAttr(kind, s_is_reply);
        if (is_reply == NULL) {
            PyErr_Clear();
            rc = 1;
            goto done;
        }
        int reply = PyObject_IsTrue(is_reply);
        Py_DECREF(is_reply);
        if (reply < 0)
            goto done;
        if (reply) {
            /* reply_to.try_fire(sim, msg): a reply racing the
             * requester's retransmission timeout is dropped */
            if (g_fast && Py_IS_TYPE(reply_to, g_SignalType)) {
                int fired = slot_truth(SLOT(reply_to, off_s_fired));
                if (fired < 0)
                    goto done;
                if (fired) {
                    rc = 0;
                    goto done;
                }
                PyObject *waiters = SLOT(reply_to, off_s_waiters);
                if (waiters != NULL && PyList_CheckExact(waiters)) {
                    rc = signal_fire_commit(sim, reply_to, msg);
                    goto done;
                }
            }
            PyObject *res = PyObject_CallMethodObjArgs(
                reply_to, s_try_fire, sim_obj, msg, NULL);
            if (res == NULL)
                goto done;
            Py_DECREF(res);
            rc = 0;
            goto done;
        }
    }
    /* request path: handler = self._handlers[msg.dst_node] */
    {
        long long dst;
        if (ll_of(SLOT(msg, off_m_dst), &dst) < 0) {
            rc = 1;
            goto done;
        }
        PyObject *handlers = PyObject_GetAttr(net, s_handlers);
        if (handlers == NULL) {
            PyErr_Clear();
            rc = 1;
            goto done;
        }
        if (!PyList_CheckExact(handlers) || dst < 0
                || dst >= PyList_GET_SIZE(handlers)) {
            Py_DECREF(handlers);
            rc = 1;
            goto done;
        }
        PyObject *h = Py_NewRef(PyList_GET_ITEM(handlers, dst));
        Py_DECREF(handlers);
        if (h == Py_None) {
            /* no handler: the Python coding raises the right error */
            Py_DECREF(h);
            rc = 1;
            goto done;
        }
        PyObject *target = h;   /* what we will call with (msg,) */
        if (PyMethod_Check(h) && PyMethod_GET_FUNCTION(h) == g_HubReceive
                && PyObject_TypeCheck(PyMethod_GET_SELF(h), g_HubType)) {
            /* inline Hub.receive: one identity-hash dict probe */
            PyObject *hub = PyMethod_GET_SELF(h);
            PyObject *routes = SLOT(hub, off_h_routes);
            if (routes != NULL && PyDict_CheckExact(routes)) {
                PyObject *route = PyDict_GetItemWithError(routes, kind);
                if (route == NULL && PyErr_Occurred()) {
                    Py_DECREF(h);
                    goto done;
                }
                if (route != NULL) {
                    if (kind == g_WordUpdateKind) {
                        int r = word_update_fast(sim, hub, msg);
                        if (r <= 0) {
                            Py_DECREF(h);
                            rc = r;
                            goto done;
                        }
                    }
                    target = route;
                }
                /* unroutable kinds call receive() for its error */
            }
        }
        PyObject *res = PyObject_CallOneArg(target, msg);
        Py_DECREF(h);
        if (res == NULL)
            goto done;
        Py_DECREF(res);
        rc = 0;
    }
done:
    Py_DECREF(sim_obj);
    return rc;
}

/* Network.send fast path (latency-only universe).  Returns 0 handled,
 * 1 fall back (nothing mutated), -1 error. */
static int
send_fast(PyObject *net, PyObject *msg)
{
    if (!g_model_fast || !Py_IS_TYPE(msg, g_MsgType))
        return 1;
    PyObject *sim_obj = PyObject_GetAttr(net, s_sim);
    if (sim_obj == NULL) {
        PyErr_Clear();
        return 1;
    }
    if (!Py_IS_TYPE(sim_obj, &Sim_Type)) {
        Py_DECREF(sim_obj);
        return 1;
    }
    SimObject *sim = (SimObject *)sim_obj;
    int rc = -1;
    PyObject *stats = NULL, *key = NULL, *deliver = NULL;
    /* --- precondition phase: no mutation before every check passes --- */
    {
        PyObject *cfg = PyObject_GetAttr(net, s_config);
        if (cfg == NULL)
            goto soft_fallback;
        int contended = 0;
        static PyObject **contention_names[] = { NULL, NULL };
        contention_names[0] = &s_router_contention;
        contention_names[1] = &s_link_contention;
        for (int i = 0; i < 2 && !contended; i++) {
            PyObject *flag = PyObject_GetAttr(cfg, *contention_names[i]);
            if (flag == NULL) {
                Py_DECREF(cfg);
                goto soft_fallback;
            }
            contended = PyObject_IsTrue(flag);
            Py_DECREF(flag);
            if (contended < 0) {
                Py_DECREF(cfg);
                goto done;
            }
        }
        Py_DECREF(cfg);
        if (contended)
            goto soft_fallback;
    }
    {
        PyObject *names[3];
        names[0] = s_delay_injector;
        names[1] = s_reorder_injector;
        names[2] = s_shard;
        for (int i = 0; i < 3; i++) {
            PyObject *obj = PyObject_GetAttr(net, names[i]);
            if (obj == NULL)
                goto soft_fallback;
            int none = (obj == Py_None);
            Py_DECREF(obj);
            if (!none)
                goto soft_fallback;
        }
    }
    {
        PyObject *hooks = PyObject_GetAttr(net, s_send_hooks);
        if (hooks == NULL)
            goto soft_fallback;
        int empty = PyList_CheckExact(hooks)
            && PyList_GET_SIZE(hooks) == 0;
        Py_DECREF(hooks);
        if (!empty)
            goto soft_fallback;
    }
    stats = PyObject_GetAttr(net, s_stats);
    if (stats == NULL)
        goto soft_fallback;
    if (!Py_IS_TYPE(stats, g_StatsType))
        goto soft_fallback;
    {
        PyObject *te = PyObject_GetAttr(stats, s_trace_enabled);
        if (te == NULL)
            goto soft_fallback;
        int tracing = PyObject_IsTrue(te);
        Py_DECREF(te);
        if (tracing < 0)
            goto done;
        if (tracing)
            goto soft_fallback;
    }
    long long hops, lat;
    {
        PyObject *src = SLOT(msg, off_m_src);
        PyObject *dst = SLOT(msg, off_m_dst);
        if (src == NULL || dst == NULL)
            goto soft_fallback;
        PyObject *cache = PyObject_GetAttr(net, s_route_cache);
        if (cache == NULL)
            goto soft_fallback;
        if (!PyDict_CheckExact(cache)) {
            Py_DECREF(cache);
            goto soft_fallback;
        }
        key = PyTuple_Pack(2, src, dst);
        if (key == NULL) {
            Py_DECREF(cache);
            goto done;
        }
        PyObject *route = PyDict_GetItemWithError(cache, key);
        if (route == NULL) {
            Py_DECREF(cache);
            if (PyErr_Occurred())
                goto done;
            goto soft_fallback;   /* cold route: Python fills the cache */
        }
        int ok = PyTuple_CheckExact(route) && PyTuple_GET_SIZE(route) == 2
            && ll_of(PyTuple_GET_ITEM(route, 0), &hops) == 0
            && ll_of(PyTuple_GET_ITEM(route, 1), &lat) == 0;
        Py_DECREF(cache);
        if (!ok)
            goto soft_fallback;
    }
    PyObject *kind = SLOT(msg, off_m_kind);
    if (kind == NULL)
        goto soft_fallback;
    long long size = 0;
    PyObject *counters[3] = { NULL, NULL, NULL };
    if (hops == 0) {
        counters[0] = PyObject_GetAttr(stats, s_local_messages);
    }
    else {
        counters[0] = PyObject_GetAttr(stats, s_messages);
        counters[1] = PyObject_GetAttr(stats, s_bytes);
        counters[2] = PyObject_GetAttr(stats, s_hop_bytes);
        if (ll_of(SLOT(msg, off_m_size), &size) < 0) {
            Py_XDECREF(counters[0]);
            Py_XDECREF(counters[1]);
            Py_XDECREF(counters[2]);
            goto soft_fallback;
        }
    }
    {
        int bad = 0;
        for (int i = 0; i < 3; i++) {
            if (i == 0 || hops != 0) {
                if (counters[i] == NULL || !PyDict_Check(counters[i]))
                    bad = 1;
            }
        }
        if (bad) {
            PyErr_Clear();
            Py_XDECREF(counters[0]);
            Py_XDECREF(counters[1]);
            Py_XDECREF(counters[2]);
            goto soft_fallback;
        }
    }
    int retrans = slot_truth(SLOT(msg, off_m_retransmit));
    long long retrans_base = 0;
    if (retrans > 0) {
        PyObject *rt = PyObject_GetAttr(stats, s_retransmits);
        int ok = rt != NULL && ll_of(rt, &retrans_base) == 0;
        Py_XDECREF(rt);
        if (!ok) {
            PyErr_Clear();
            Py_XDECREF(counters[0]);
            Py_XDECREF(counters[1]);
            Py_XDECREF(counters[2]);
            goto soft_fallback;
        }
    }
    else if (retrans < 0) {
        Py_XDECREF(counters[0]);
        Py_XDECREF(counters[1]);
        Py_XDECREF(counters[2]);
        goto done;
    }
    PyObject *seqs = NULL;
    long long src_ll = 0, seq = 0;
    if (lat != 0) {
        PyObject *src = SLOT(msg, off_m_src);
        seqs = PyObject_GetAttr(net, s_inj_seq);
        int ok = seqs != NULL && PyList_CheckExact(seqs)
            && ll_of(src, &src_ll) == 0 && src_ll >= 0
            && src_ll < PyList_GET_SIZE(seqs)
            && ll_of(PyList_GET_ITEM(seqs, src_ll), &seq) == 0;
        if (!ok) {
            PyErr_Clear();
            Py_XDECREF(seqs);
            Py_XDECREF(counters[0]);
            Py_XDECREF(counters[1]);
            Py_XDECREF(counters[2]);
            goto soft_fallback;
        }
    }
    deliver = PyObject_GetAttr(net, s_deliver);
    if (deliver == NULL) {
        PyErr_Clear();
        Py_XDECREF(seqs);
        Py_XDECREF(counters[0]);
        Py_XDECREF(counters[1]);
        Py_XDECREF(counters[2]);
        goto soft_fallback;
    }
    /* --- commit phase: stats.record + inlined delivery scheduling --- */
    {
        int err = 0;
        if (hops == 0) {
            err = counter_add(counters[0], kind, 1) < 0;
        }
        else {
            err = counter_add(counters[0], kind, 1) < 0
                || counter_add(counters[1], kind, size) < 0
                || counter_add(counters[2], kind, size * hops) < 0;
        }
        Py_XDECREF(counters[0]);
        Py_XDECREF(counters[1]);
        Py_XDECREF(counters[2]);
        if (err) {
            Py_XDECREF(seqs);
            goto done;
        }
        if (retrans > 0) {
            PyObject *nrt = PyLong_FromLongLong(retrans_base + 1);
            if (nrt == NULL || PyObject_SetAttr(stats, s_retransmits,
                                                nrt) < 0) {
                Py_XDECREF(nrt);
                Py_XDECREF(seqs);
                goto done;
            }
            Py_DECREF(nrt);
        }
        PyObject *margs = PyTuple_Pack(1, msg);
        if (margs == NULL) {
            Py_XDECREF(seqs);
            goto done;
        }
        PyObject *ev = PyTuple_Pack(2, deliver, margs);
        Py_DECREF(margs);
        if (ev == NULL) {
            Py_XDECREF(seqs);
            goto done;
        }
        if (lat != 0) {
            PyObject *seq_old = Py_NewRef(PyList_GET_ITEM(seqs, src_ll));
            PyObject *seq_new = PyLong_FromLongLong(seq + 1);
            if (seq_new == NULL) {
                Py_DECREF(seq_old);
                Py_DECREF(ev);
                Py_DECREF(seqs);
                goto done;
            }
            PyList_SetItem(seqs, src_ll, seq_new);   /* steals seq_new */
            Py_DECREF(seqs);
            PyObject *dkey = PyTuple_Pack(2, SLOT(msg, off_m_src),
                                          seq_old);
            Py_DECREF(seq_old);
            if (dkey == NULL) {
                Py_DECREF(ev);
                goto done;
            }
            int r = push_delivery_c(sim, sim->now + lat, dkey, ev);
            Py_DECREF(dkey);
            Py_DECREF(ev);
            if (r < 0)
                goto done;
        }
        else {
            /* zero latency implies node-local: plain FIFO ring order */
            int r = ring_push(sim->ring, ev);
            Py_DECREF(ev);
            if (r < 0)
                goto done;
        }
        rc = 0;
        goto done;
    }
soft_fallback:
    PyErr_Clear();
    rc = 1;
done:
    Py_XDECREF(stats);
    Py_XDECREF(key);
    Py_XDECREF(deliver);
    Py_DECREF(sim_obj);
    return rc;
}

/* bound instance callables installed by repro.sim.backends.model */

static PyObject *
net_send_meth(PyObject *net, PyObject *msg)
{
    int r = send_fast(net, msg);
    if (r < 0)
        return NULL;
    if (r == 0)
        Py_RETURN_NONE;
    return PyObject_CallFunctionObjArgs(g_NetSend, net, msg, NULL);
}

static PyObject *
net_deliver_meth(PyObject *net, PyObject *msg)
{
    int r = deliver_fast(net, msg);
    if (r < 0)
        return NULL;
    if (r == 0)
        Py_RETURN_NONE;
    return PyObject_CallFunctionObjArgs(g_NetDeliver, net, msg, NULL);
}

static PyMethodDef net_send_def = {
    "send", (PyCFunction)net_send_meth, METH_O,
    "compiled Network.send fast path (latency-only universe; falls "
    "back to the Python coding whenever any precondition fails)"};

static PyMethodDef net_deliver_def = {
    "_deliver", (PyCFunction)net_deliver_meth, METH_O,
    "compiled Network._deliver fast path (reply fire, hub dispatch, "
    "inlined word updates)"};

static PyObject *
mod_make_sender(PyObject *mod, PyObject *net)
{
    (void)mod;
    return PyCFunction_New(&net_send_def, net);
}

static PyObject *
mod_make_deliver(PyObject *mod, PyObject *net)
{
    (void)mod;
    return PyCFunction_New(&net_deliver_def, net);
}

/* _EgressWave._granted / ._expire replicas.  These are module-level
 * functions; AccelEgressWave plants ``(wave_granted, (self,))`` /
 * ``(wave_expire, (self,))`` event tuples so each wave packet costs one
 * C callback instead of a Python frame. */

static PyObject *
mod_wave_granted(PyObject *mod, PyObject *wave)
{
    (void)mod;
    if (g_model_fast && PyObject_TypeCheck(wave, g_WaveType)) {
        PyObject *sim_obj = SLOT(wave, off_ew_sim);
        PyObject *expiry = SLOT(wave, off_ew_expiry);
        long long occ;
        if (sim_obj != NULL && expiry != NULL
                && Py_IS_TYPE(sim_obj, &Sim_Type)
                && ll_of(SLOT(wave, off_ew_occ), &occ) == 0) {
            SimObject *sim = (SimObject *)sim_obj;
            if (push_future(sim, sim->now + occ, expiry) < 0)
                return NULL;
            Py_RETURN_NONE;
        }
    }
    return PyObject_CallOneArg(g_WaveGrantedPy, wave);
}

static PyObject *
mod_wave_expire(PyObject *mod, PyObject *wave)
{
    (void)mod;
    if (!g_model_fast || !PyObject_TypeCheck(wave, g_WaveType))
        return PyObject_CallOneArg(g_WaveExpirePy, wave);
    PyObject *sim_obj = SLOT(wave, off_ew_sim);
    PyObject *res = SLOT(wave, off_ew_res);
    PyObject *msgs = SLOT(wave, off_ew_msgs);
    PyObject *done = SLOT(wave, off_ew_done);
    PyObject *expiry = SLOT(wave, off_ew_expiry);
    PyObject *hub = SLOT(wave, off_ew_hub);
    long long occ, idx, busy_cyc, acq;
    if (sim_obj == NULL || res == NULL || msgs == NULL || done == NULL
            || expiry == NULL || hub == NULL
            || !Py_IS_TYPE(sim_obj, &Sim_Type)
            || !g_fast || !Py_IS_TYPE(res, g_ResourceType)
            || !PyList_CheckExact(msgs)
            || !Py_IS_TYPE(done, g_SignalType)
            || !PyObject_TypeCheck(hub, g_HubType)
            || ll_of(SLOT(wave, off_ew_occ), &occ) < 0
            || ll_of(SLOT(wave, off_ew_index), &idx) < 0
            || ll_of(SLOT(res, off_r_busy_cycles), &busy_cyc) < 0
            || ll_of(SLOT(res, off_r_acquired), &acq) < 0
            || idx < 0 || idx >= PyList_GET_SIZE(msgs))
        return PyObject_CallOneArg(g_WaveExpirePy, wave);
    PyObject *queue = SLOT(res, off_r_queue);
    PyObject *grants = SLOT(res, off_r_grants);
    if (queue == NULL || grants == NULL)
        return PyObject_CallOneArg(g_WaveExpirePy, wave);
    Py_ssize_t qlen = PyObject_Length(queue);
    if (qlen < 0) {
        PyErr_Clear();
        return PyObject_CallOneArg(g_WaveExpirePy, wave);
    }
    SimObject *sim = (SimObject *)sim_obj;
    long long now = sim->now;
    /* --- commit --- */
    PyObject *nbc = PyLong_FromLongLong(busy_cyc + (now - acq));
    if (nbc == NULL)
        return NULL;
    slot_store(res, off_r_busy_cycles, nbc);
    PyObject *msg = Py_NewRef(PyList_GET_ITEM(msgs, idx));
    PyObject *nidx = PyLong_FromLongLong(idx + 1);
    if (nidx == NULL) {
        Py_DECREF(msg);
        return NULL;
    }
    slot_store(wave, off_ew_index, nidx);
    int more = (idx + 1) < PyList_GET_SIZE(msgs);
    if (qlen > 0) {
        /* grant the port to the queued process first; with packets
         * left, rejoin at the tail */
        PyObject *waiter = PyObject_CallMethodNoArgs(queue, s_popleft);
        if (waiter == NULL) {
            Py_DECREF(msg);
            return NULL;
        }
        PyObject *ng = PyNumber_Add(grants, g_one);
        PyObject *acq_now = PyLong_FromLongLong(now);
        if (ng == NULL || acq_now == NULL) {
            Py_XDECREF(ng);
            Py_XDECREF(acq_now);
            Py_DECREF(waiter);
            Py_DECREF(msg);
            return NULL;
        }
        slot_store(res, off_r_grants, ng);
        slot_store(res, off_r_acquired, acq_now);
        PyObject *rn = NULL;
        if (Py_IS_TYPE(waiter, g_ProcessType))
            rn = Py_XNewRef(SLOT(waiter, off_p_rn));
        else if (PyObject_TypeCheck(waiter, g_WaveType))
            rn = Py_XNewRef(SLOT(waiter, off_ew_rn));
        if (rn == NULL) {
            rn = PyObject_GetAttr(waiter, s_rn);
            if (rn == NULL) {
                Py_DECREF(waiter);
                Py_DECREF(msg);
                return NULL;
            }
        }
        int rr = ring_push(sim->ring, rn);
        Py_DECREF(rn);
        if (rr < 0) {
            Py_DECREF(waiter);
            Py_DECREF(msg);
            return NULL;
        }
        Py_DECREF(waiter);
        if (more) {
            PyObject *ap = PyObject_CallMethodOneArg(queue, s_append,
                                                     wave);
            if (ap == NULL) {
                Py_DECREF(msg);
                return NULL;
            }
            Py_DECREF(ap);
        }
    }
    else if (more) {
        /* immediate self re-grant with nobody waiting */
        PyObject *ng = PyNumber_Add(grants, g_one);
        PyObject *acq_now = PyLong_FromLongLong(now);
        if (ng == NULL || acq_now == NULL) {
            Py_XDECREF(ng);
            Py_XDECREF(acq_now);
            Py_DECREF(msg);
            return NULL;
        }
        slot_store(res, off_r_grants, ng);
        slot_store(res, off_r_acquired, acq_now);
        if (push_future(sim, now + occ, expiry) < 0) {
            Py_DECREF(msg);
            return NULL;
        }
    }
    else {
        slot_store(res, off_r_busy, Py_NewRef(Py_False));
    }
    /* self.hub.net.send(msg) — fetched generically per call so that
     * monkeypatched senders (fault injection) stay honored */
    PyObject *net = Py_XNewRef(SLOT(hub, off_h_net));
    if (net == NULL) {
        net = PyObject_GetAttr(hub, s_net);
        if (net == NULL) {
            Py_DECREF(msg);
            return NULL;
        }
    }
    PyObject *sender = PyObject_GetAttr(net, s_send);
    Py_DECREF(net);
    if (sender == NULL) {
        Py_DECREF(msg);
        return NULL;
    }
    PyObject *sres = PyObject_CallOneArg(sender, msg);
    Py_DECREF(sender);
    Py_DECREF(msg);
    if (sres == NULL)
        return NULL;
    Py_DECREF(sres);
    if (!more) {
        int fired = slot_truth(SLOT(done, off_s_fired));
        if (fired < 0)
            return NULL;
        PyObject *waiters = SLOT(done, off_s_waiters);
        if (!fired && waiters != NULL && PyList_CheckExact(waiters)) {
            if (signal_fire_commit(sim, done, Py_None) < 0)
                return NULL;
        }
        else {
            /* degenerate (already fired / odd waiter list): the
             * generic call raises exactly like the Python coding */
            PyObject *fr = PyObject_CallMethodOneArg(done, s_fire,
                                                     sim_obj);
            if (fr == NULL)
                return NULL;
            Py_DECREF(fr);
        }
    }
    Py_RETURN_NONE;
}

/* build an egress wave's message list in one pass: Message.__init__
 * replica per (cpu, node) pair, ids drawn from the shared counter */
static PyObject *
mod_build_wave(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    (void)mod;
    if (nargs != 6) {
        PyErr_SetString(PyExc_TypeError,
                        "build_wave expects (kind, src_node, addr, "
                        "value, payload, pairs)");
        return NULL;
    }
    if (!g_model_fast) {
        PyErr_SetString(PyExc_RuntimeError,
                        "model fast paths are not armed");
        return NULL;
    }
    PyObject *kind = args[0], *src = args[1], *addr = args[2],
        *value = args[3], *payload = args[4];
    PyObject *pairs = PySequence_Fast(args[5],
                                      "pairs must be a sequence");
    if (pairs == NULL)
        return NULL;
    PyObject *packet = PyObject_GetAttr(kind, s_packet_bytes);
    if (packet == NULL) {
        Py_DECREF(pairs);
        return NULL;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(pairs);
    PyObject *out = PyList_New(n);
    if (out == NULL) {
        Py_DECREF(packet);
        Py_DECREF(pairs);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *pair = PySequence_Fast_GET_ITEM(pairs, i);
        if (!PyTuple_Check(pair) || PyTuple_GET_SIZE(pair) != 2) {
            PyErr_SetString(PyExc_TypeError,
                            "pairs must be (cpu, node) tuples");
            goto fail;
        }
        PyObject *cpu = PyTuple_GET_ITEM(pair, 0);
        PyObject *node = PyTuple_GET_ITEM(pair, 1);
        PyObject *m = g_MsgType->tp_alloc(g_MsgType, 0);
        if (m == NULL)
            goto fail;
        PyObject *mid = PyIter_Next(g_MsgIds);
        if (mid == NULL) {
            Py_DECREF(m);
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_RuntimeError,
                                "message id counter exhausted");
            goto fail;
        }
        SLOT(m, off_m_kind) = Py_NewRef(kind);
        SLOT(m, off_m_src) = Py_NewRef(src);
        SLOT(m, off_m_dst) = Py_NewRef(node);
        SLOT(m, off_m_addr) = Py_NewRef(addr);
        SLOT(m, off_m_value) = Py_NewRef(value);
        SLOT(m, off_m_payload) = Py_NewRef(payload);
        SLOT(m, off_m_reply_to) = Py_NewRef(Py_None);
        SLOT(m, off_m_requester) = Py_NewRef(Py_None);
        SLOT(m, off_m_dst_cpu) = Py_NewRef(cpu);
        SLOT(m, off_m_retransmit) = Py_NewRef(Py_False);
        SLOT(m, off_m_size) = Py_NewRef(packet);
        SLOT(m, off_m_id) = mid;
        PyList_SET_ITEM(out, i, m);
    }
    Py_DECREF(packet);
    Py_DECREF(pairs);
    return out;
fail:
    Py_DECREF(out);
    Py_DECREF(packet);
    Py_DECREF(pairs);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* compiled protocol coroutines                                        */
/*                                                                     */
/* The model hot path is a chain of tiny generators: Hub.egress_send   */
/* and CacheController.load / spin_until / _do_invalidate.  Each       */
/* becomes a C state machine speaking the full generator protocol      */
/* (tp_iternext + am_send + send/throw/close), so the kernel's         */
/* trampoline, Python ``yield from`` and ``sim.spawn`` all drive it    */
/* without a Python frame.  Every port replays the exact Python        */
/* coding — same yields, same counters, same message construction      */
/* order — and a precondition miss before any mutation delegates to    */
/* the armed Python twin (a fresh generator replaying the whole        */
/* body); after mutation only targeted generic calls are used, never   */
/* a full-body replay.                                                 */
/* ------------------------------------------------------------------ */

/* obj.<slot> += 1, degrading to the attribute protocol */
static int
inc_counter(PyObject *obj, Py_ssize_t off, const char *name)
{
    long long v;
    if (off >= 0 && ll_of(SLOT(obj, off), &v) == 0) {
        PyObject *nv = PyLong_FromLongLong(v + 1);
        if (nv == NULL)
            return -1;
        slot_store(obj, off, nv);
        return 0;
    }
    PyObject *cur = PyObject_GetAttrString(obj, name);
    if (cur == NULL)
        return -1;
    PyObject *nv = PyNumber_Add(cur, g_one);
    Py_DECREF(cur);
    if (nv == NULL)
        return -1;
    int r = PyObject_SetAttrString(obj, name, nv);
    Py_DECREF(nv);
    return r;
}

/* raise StopIteration(value) exactly like a finished generator; the
 * instance is constructed explicitly so tuple values survive */
static void
set_stop_iteration_exc(PyObject *value)
{
    if (value == NULL || value == Py_None) {
        PyErr_SetNone(PyExc_StopIteration);
        return;
    }
    PyObject *e = PyObject_CallOneArg(PyExc_StopIteration, value);
    if (e == NULL)
        return;
    PyErr_SetObject(PyExc_StopIteration, e);
    Py_DECREF(e);
}

/* Resource.release replica (grant hand-off included); any precondition
 * miss — including the idle-release RuntimeError — defers to the
 * generic method so behaviour matches exactly.  Returns 0 / -1. */
static int
resource_release(PyObject *res)
{
    long long busy_cyc, acq;
    if (g_fast && Py_IS_TYPE(res, g_ResourceType)) {
        PyObject *sim_obj = SLOT(res, off_r_sim);
        int busy = slot_truth(SLOT(res, off_r_busy));
        if (busy < 0)
            return -1;
        if (busy && sim_obj != NULL && Py_IS_TYPE(sim_obj, &Sim_Type)
                && ll_of(SLOT(res, off_r_busy_cycles), &busy_cyc) == 0
                && ll_of(SLOT(res, off_r_acquired), &acq) == 0
                && SLOT(res, off_r_queue) != NULL
                && SLOT(res, off_r_grants) != NULL) {
            SimObject *sim = (SimObject *)sim_obj;
            long long now = sim->now;
            PyObject *queue = SLOT(res, off_r_queue);
            Py_ssize_t qlen = PyObject_Size(queue);
            if (qlen < 0)
                return -1;
            PyObject *nbc = PyLong_FromLongLong(busy_cyc + (now - acq));
            if (nbc == NULL)
                return -1;
            slot_store(res, off_r_busy_cycles, nbc);
            if (qlen > 0) {
                PyObject *waiter =
                    PyObject_CallMethodNoArgs(queue, s_popleft);
                if (waiter == NULL)
                    return -1;
                PyObject *ng = PyNumber_Add(SLOT(res, off_r_grants), g_one);
                PyObject *acq_now = PyLong_FromLongLong(now);
                if (ng == NULL || acq_now == NULL) {
                    Py_XDECREF(ng);
                    Py_XDECREF(acq_now);
                    Py_DECREF(waiter);
                    return -1;
                }
                slot_store(res, off_r_grants, ng);
                slot_store(res, off_r_acquired, acq_now);
                PyObject *rn = NULL;
                if (Py_IS_TYPE(waiter, g_ProcessType))
                    rn = Py_XNewRef(SLOT(waiter, off_p_rn));
                else if (g_model_fast
                         && PyObject_TypeCheck(waiter, g_WaveType))
                    rn = Py_XNewRef(SLOT(waiter, off_ew_rn));
                if (rn == NULL) {
                    rn = PyObject_GetAttr(waiter, s_rn);
                    if (rn == NULL) {
                        Py_DECREF(waiter);
                        return -1;
                    }
                }
                int rr = ring_push(sim->ring, rn);
                Py_DECREF(rn);
                Py_DECREF(waiter);
                return rr;
            }
            slot_store(res, off_r_busy, Py_NewRef(Py_False));
            return 0;
        }
    }
    PyObject *r = PyObject_CallMethod(res, "release", NULL);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* One cache level of CacheController.load: lookup (with LRU touch) +
 * hit/miss counter + word read.  Returns 1 on hit (*val owned), 0 on
 * miss, -1 on error.  Degenerate layouts use the generic protocol. */
static int
load_level(PyObject *cache, PyObject *addr_obj, long long addr,
           PyObject **val)
{
    long long lb, nsets, stamp;
    PyObject *line = NULL;
    if (cache != NULL && Py_IS_TYPE(cache, g_CacheType)
            && ll_of(SLOT(cache, off_sc_lb), &lb) == 0 && lb > 0
            && ll_of(SLOT(cache, off_sc_nsets), &nsets) == 0 && nsets > 0
            && ll_of(SLOT(cache, off_sc_stamp), &stamp) == 0
            && SLOT(cache, off_sc_sets) != NULL
            && PyDict_Check(SLOT(cache, off_sc_sets))) {
        long long base = addr - addr % lb;
        PyObject *skey = PyLong_FromLongLong((base / lb) % nsets);
        if (skey == NULL)
            return -1;
        /* defaultdict: GetItemWithError matches ``.get`` (no
         * __missing__ materialization) */
        PyObject *entry =
            PyDict_GetItemWithError(SLOT(cache, off_sc_sets), skey);
        Py_DECREF(skey);
        if (entry == NULL && PyErr_Occurred())
            return -1;
        if (entry != NULL) {
            if (!PyDict_CheckExact(entry))
                goto generic;
            PyObject *bkey = PyLong_FromLongLong(base);
            if (bkey == NULL)
                return -1;
            line = PyDict_GetItemWithError(entry, bkey);
            Py_DECREF(bkey);
            if (line == NULL && PyErr_Occurred())
                return -1;
        }
        if (line != NULL) {
            if (!Py_IS_TYPE(line, g_LineType)
                    || SLOT(line, off_cl_state) == NULL)
                goto generic;
            if (SLOT(line, off_cl_state) == g_InvalidState)
                line = NULL;
        }
        if (line == NULL)
            return inc_counter(cache, off_sc_misses, "misses");
        /* LRU touch: _stamp += 1; line.last_use = _stamp */
        PyObject *ns = PyLong_FromLongLong(stamp + 1);
        if (ns == NULL)
            return -1;
        slot_store(line, off_cl_lastuse, Py_NewRef(ns));
        slot_store(cache, off_sc_stamp, ns);
        if (inc_counter(cache, off_sc_hits, "hits") < 0)
            return -1;
        PyObject *words = SLOT(line, off_cl_words);
        if (words != NULL && PyDict_CheckExact(words)) {
            PyObject *wkey =
                PyLong_FromLongLong(addr - addr % g_word_bytes);
            if (wkey == NULL)
                return -1;
            PyObject *w = PyDict_GetItemWithError(words, wkey);
            Py_DECREF(wkey);
            if (w == NULL) {
                if (PyErr_Occurred())
                    return -1;
                *val = PyLong_FromLong(0);
                return *val == NULL ? -1 : 1;
            }
            *val = Py_NewRef(w);
            return 1;
        }
        {
            PyObject *w =
                PyObject_CallMethod(line, "read_word", "O", addr_obj);
            if (w == NULL)
                return -1;
            *val = w;
            return 1;
        }
    }
generic:
    {
        PyObject *line_g =
            PyObject_CallMethod(cache, "lookup", "O", addr_obj);
        if (line_g == NULL)
            return -1;
        if (line_g == Py_None) {
            Py_DECREF(line_g);
            return inc_counter(cache, off_sc_misses, "misses");
        }
        if (inc_counter(cache, off_sc_hits, "hits") < 0) {
            Py_DECREF(line_g);
            return -1;
        }
        PyObject *w =
            PyObject_CallMethod(line_g, "read_word", "O", addr_obj);
        Py_DECREF(line_g);
        if (w == NULL)
            return -1;
        *val = w;
        return 1;
    }
}

/* SetAssociativeCache.invalidate replica: drop the line, counting the
 * invalidation only when the popped line was valid. */
static int
cache_invalidate(PyObject *cache, PyObject *addr_obj, long long addr)
{
    long long lb, nsets;
    if (cache != NULL && Py_IS_TYPE(cache, g_CacheType)
            && ll_of(SLOT(cache, off_sc_lb), &lb) == 0 && lb > 0
            && ll_of(SLOT(cache, off_sc_nsets), &nsets) == 0 && nsets > 0
            && SLOT(cache, off_sc_sets) != NULL
            && PyDict_Check(SLOT(cache, off_sc_sets))) {
        long long base = addr - addr % lb;
        PyObject *skey = PyLong_FromLongLong((base / lb) % nsets);
        if (skey == NULL)
            return -1;
        PyObject *entry =
            PyDict_GetItemWithError(SLOT(cache, off_sc_sets), skey);
        Py_DECREF(skey);
        if (entry == NULL)
            return PyErr_Occurred() ? -1 : 0;
        if (!PyDict_CheckExact(entry))
            goto generic;
        PyObject *bkey = PyLong_FromLongLong(base);
        if (bkey == NULL)
            return -1;
        PyObject *line = PyDict_GetItemWithError(entry, bkey);
        if (line == NULL) {
            Py_DECREF(bkey);
            return PyErr_Occurred() ? -1 : 0;
        }
        Py_INCREF(line);
        int dr = PyDict_DelItem(entry, bkey);
        Py_DECREF(bkey);
        if (dr < 0) {
            Py_DECREF(line);
            return -1;
        }
        int valid;
        if (Py_IS_TYPE(line, g_LineType)
                && SLOT(line, off_cl_state) != NULL) {
            valid = SLOT(line, off_cl_state) != g_InvalidState;
        }
        else {
            PyObject *st = PyObject_GetAttrString(line, "state");
            if (st == NULL) {
                Py_DECREF(line);
                return -1;
            }
            valid = st != g_InvalidState;
            Py_DECREF(st);
        }
        Py_DECREF(line);
        if (valid)
            return inc_counter(cache, off_sc_inval, "invalidations");
        return 0;
    }
generic:
    {
        PyObject *r =
            PyObject_CallMethod(cache, "invalidate", "O", addr_obj);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
}

/* CacheController._line_changed replica: bump the line's version and
 * pulse its gate; one generic call on any precondition miss. */
static int
ctrl_line_changed(PyObject *ctrl, PyObject *addr_obj, PyObject *line_obj)
{
    PyObject *meta_map = SLOT(ctrl, off_c_meta);
    PyObject *sim_obj = SLOT(ctrl, off_c_sim);
    PyObject *meta = NULL;
    if (meta_map != NULL && PyDict_CheckExact(meta_map)) {
        meta = PyDict_GetItemWithError(meta_map, line_obj);
        if (meta == NULL && PyErr_Occurred())
            return -1;
    }
    if (meta != NULL && Py_IS_TYPE(meta, g_LineMetaType)
            && sim_obj != NULL && Py_IS_TYPE(sim_obj, &Sim_Type)) {
        PyObject *gate = SLOT(meta, off_lm_gate);
        long long version;
        if (gate != NULL && g_fast && Py_IS_TYPE(gate, g_GateType)
                && SLOT(gate, off_g_waiters) != NULL
                && PyList_CheckExact(SLOT(gate, off_g_waiters))
                && ll_of(SLOT(meta, off_lm_version), &version) == 0) {
            PyObject *nv = PyLong_FromLongLong(version + 1);
            if (nv == NULL)
                return -1;
            slot_store(meta, off_lm_version, nv);
            return gate_pulse_commit((SimObject *)sim_obj, gate);
        }
    }
    PyObject *r =
        PyObject_CallMethodObjArgs(ctrl, s_line_changed, addr_obj, NULL);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Message replica: tp_alloc + slot fill, id drawn from the shared
 * counter at construction time, exactly like Message.__init__. */
static PyObject *
msg_new(PyObject *kind, PyObject *src, PyObject *dst, PyObject *addr,
        PyObject *payload, PyObject *requester, PyObject *size)
{
    PyObject *m = g_MsgType->tp_alloc(g_MsgType, 0);
    if (m == NULL)
        return NULL;
    PyObject *mid = PyIter_Next(g_MsgIds);
    if (mid == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_RuntimeError,
                            "message id counter exhausted");
        Py_DECREF(m);
        return NULL;
    }
#define ORNONE(x) ((x) != NULL ? (x) : Py_None)
    SLOT(m, off_m_kind) = Py_NewRef(kind);
    SLOT(m, off_m_src) = Py_NewRef(ORNONE(src));
    SLOT(m, off_m_dst) = Py_NewRef(ORNONE(dst));
    SLOT(m, off_m_addr) = Py_NewRef(ORNONE(addr));
    SLOT(m, off_m_value) = Py_NewRef(Py_None);
    SLOT(m, off_m_payload) = Py_NewRef(ORNONE(payload));
    SLOT(m, off_m_reply_to) = Py_NewRef(Py_None);
    SLOT(m, off_m_requester) = Py_NewRef(ORNONE(requester));
    SLOT(m, off_m_dst_cpu) = Py_NewRef(Py_None);
    SLOT(m, off_m_retransmit) = Py_NewRef(Py_False);
    SLOT(m, off_m_size) = Py_NewRef(size);
    SLOT(m, off_m_id) = mid;
#undef ORNONE
    return m;
}

/* ---- the coroutine object ---- */

enum {
    CORO_EGRESS = 1,
    CORO_LOAD,
    CORO_SPIN,
    CORO_INV,
    CORO_GETS,
    CORO_RF,
};

/* per-port states; 0 is always "not started" */
enum { EG_ACQ = 1, EG_OCC = 2 };
enum { LD_L1 = 1, LD_L2 = 2, LD_MISS = 3 };
enum { SP_LOAD = 1, SP_GATE = 2 };
enum { IV_L2 = 1, IV_ACK = 2 };
enum { GS_ACQ = 1, GS_DIR = 2, GS_OWNED = 3 };
enum { RF_ACQ = 1, RF_OCC = 2, RF_RES = 3, RF_SEND = 4 };
#define ST_DONE (-1)
#define ST_DELEG 9   /* whole-body delegation to the Python twin */

typedef struct {
    PyObject_HEAD
    int port;
    int state;
    long long ll;                 /* the port's address operand */
    PyObject *a, *b, *c, *d, *e, *f;
    PyObject *sub;                /* active delegation target */
} CoroObject;

static PySendResult coro_step(CoroObject *co, PyObject *arg,
                              PyObject *exc, PyObject **result);
static PyObject *load_coro_or_py(PyObject *ctrl, PyObject *addr_obj);
static PyObject *egress_coro_or_py(PyObject *hub, PyObject *msg);

static PyObject *
coro_alloc(int port, PyObject *a, PyObject *b, PyObject *c, long long ll)
{
    CoroObject *co = PyObject_GC_New(CoroObject, &Coro_Type);
    if (co == NULL)
        return NULL;
    co->port = port;
    co->state = 0;
    co->ll = ll;
    co->a = Py_XNewRef(a);
    co->b = Py_XNewRef(b);
    co->c = Py_XNewRef(c);
    co->d = co->e = co->f = co->sub = NULL;
    PyObject_GC_Track((PyObject *)co);
    return (PyObject *)co;
}

/* factories: a compiled coroutine when the receiver matches the armed
 * layouts, the Python twin generator otherwise */
static PyObject *
egress_coro_or_py(PyObject *hub, PyObject *msg)
{
    if (g_model_fast && PyObject_TypeCheck(hub, g_HubType)
            && Py_IS_TYPE(msg, g_MsgType))
        return coro_alloc(CORO_EGRESS, hub, msg, NULL, 0);
    return PyObject_CallFunctionObjArgs(g_EgressSendPy, hub, msg, NULL);
}

static PyObject *
load_coro_or_py(PyObject *ctrl, PyObject *addr_obj)
{
    long long a;
    if (g_model_fast && PyObject_TypeCheck(ctrl, g_CtrlType)
            && ll_of(addr_obj, &a) == 0 && a >= 0) {
        PyObject *l1 = SLOT(ctrl, off_c_l1);
        PyObject *l2 = SLOT(ctrl, off_c_l2);
        if (l1 != NULL && l2 != NULL && Py_IS_TYPE(l1, g_CacheType)
                && Py_IS_TYPE(l2, g_CacheType)) {
            CoroObject *co =
                (CoroObject *)coro_alloc(CORO_LOAD, ctrl, addr_obj, l1, a);
            if (co == NULL)
                return NULL;
            co->d = Py_NewRef(l2);
            return (PyObject *)co;
        }
    }
    return PyObject_CallFunctionObjArgs(g_CtrlLoadPy, ctrl, addr_obj, NULL);
}

static PyObject *
spin_coro_or_py(PyObject *ctrl, PyObject *addr_obj, PyObject *pred)
{
    long long a;
    if (g_model_fast && PyObject_TypeCheck(ctrl, g_CtrlType)
            && ll_of(addr_obj, &a) == 0 && a >= 0)
        return coro_alloc(CORO_SPIN, ctrl, addr_obj, pred, a);
    return PyObject_CallFunctionObjArgs(g_CtrlSpinPy, ctrl, addr_obj,
                                        pred, NULL);
}

static PyObject *
inv_coro_or_py(PyObject *ctrl, PyObject *msg)
{
    long long a;
    if (g_model_fast && PyObject_TypeCheck(ctrl, g_CtrlType)
            && Py_IS_TYPE(msg, g_MsgType)
            && ll_of(SLOT(msg, off_m_addr), &a) == 0 && a >= 0)
        return coro_alloc(CORO_INV, ctrl, msg, NULL, a);
    return PyObject_CallFunctionObjArgs(g_CtrlInvPy, ctrl, msg, NULL);
}

static PyObject *
gets_coro_or_py(PyObject *engine, PyObject *msg)
{
    long long a;
    if (g_model_fast && PyObject_TypeCheck(engine, g_HomeType)
            && Py_IS_TYPE(msg, g_MsgType)
            && ll_of(SLOT(msg, off_m_addr), &a) == 0 && a >= 0
            && SLOT(engine, off_he_tdir) != NULL)
        return coro_alloc(CORO_GETS, engine, msg, NULL, a);
    return PyObject_CallFunctionObjArgs(g_ServeGetSPy, engine, msg, NULL);
}

static PyObject *
rf_coro_or_py(PyObject *engine, PyObject *msg, PyObject *words)
{
    if (g_model_fast && PyObject_TypeCheck(engine, g_HomeType)
            && Py_IS_TYPE(msg, g_MsgType))
        return coro_alloc(CORO_RF, engine, msg, words, 0);
    return PyObject_CallFunctionObjArgs(g_FinishCleanPy, engine, msg,
                                        words, NULL);
}

/* step the active delegation target: 1 = yielded (*out), 0 = returned
 * (*out = return value), -1 = error (sub cleared in both end cases) */
static int
sub_send(CoroObject *co, PyObject *arg, PyObject **out)
{
    PyObject *res = NULL;
    PySendResult sr = PyIter_Send(co->sub, arg, &res);
    if (sr == PYGEN_NEXT) {
        *out = res;
        return 1;
    }
    Py_CLEAR(co->sub);
    if (sr == PYGEN_RETURN) {
        *out = res;
        return 0;
    }
    return -1;
}

static int
sub_throw(CoroObject *co, PyObject *exc, PyObject **out)
{
    PyObject *res = PyObject_CallMethodOneArg(co->sub, s_throw, exc);
    if (res != NULL) {
        *out = res;
        return 1;
    }
    Py_CLEAR(co->sub);
    if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
        PyObject *t, *v, *tb;
        PyErr_Fetch(&t, &v, &tb);
        PyErr_NormalizeException(&t, &v, &tb);
        PyObject *value = v != NULL ? PyObject_GetAttr(v, s_value)
                                    : Py_NewRef(Py_None);
        Py_XDECREF(t);
        Py_XDECREF(v);
        Py_XDECREF(tb);
        if (value == NULL)
            return -1;
        *out = value;
        return 0;
    }
    return -1;
}

/* swap in a freshly created Python twin; valid only while nothing has
 * been mutated (the twin replays the whole body) */
static int
coro_delegate_py(CoroObject *co, PyObject *fn, PyObject *x, PyObject *y,
                 PyObject *z)
{
    PyObject *gen = z != NULL
        ? PyObject_CallFunctionObjArgs(fn, x, y, z, NULL)
        : PyObject_CallFunctionObjArgs(fn, x, y, NULL);
    if (gen == NULL)
        return -1;
    Py_XSETREF(co->sub, gen);
    co->state = ST_DELEG;
    return 0;
}

/* The heart: advance one state machine.  ``arg`` (borrowed) is the
 * sent value; when ``exc`` (borrowed exception instance) is non-NULL
 * the resume is a throw.  PYGEN_NEXT/PYGEN_RETURN hand an owned
 * *result; PYGEN_ERROR leaves the exception set. */
static PySendResult
coro_step(CoroObject *co, PyObject *arg, PyObject *exc, PyObject **result)
{
    *result = NULL;
    if (co->state == ST_DONE) {
        if (exc != NULL)
            PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
        else
            PyErr_SetNone(PyExc_StopIteration);
        return PYGEN_ERROR;
    }
    if (co->state == ST_DELEG) {
        int r = exc != NULL ? sub_throw(co, exc, result)
                            : sub_send(co, arg, result);
        if (r < 0)
            goto error_done;
        if (r == 1)
            return PYGEN_NEXT;
        co->state = ST_DONE;
        return PYGEN_RETURN;
    }

    switch (co->port) {
    /* -------------------- Hub.egress_send -------------------- */
    case CORO_EGRESS: {
        PyObject *hub = co->a, *msg = co->b;
        if (co->state == 0) {
            if (exc != NULL)
                goto reraise_done;
            PyObject *kind = SLOT(msg, off_m_kind);
            PyObject *occ = NULL, *res, *acq;
            if (kind == NULL)
                goto egress_py;
            if (kind == g_WordUpdateKind) {
                occ = SLOT(hub, off_h_t_update);
            }
            else {
                PyObject *cl = PyObject_GetAttr(kind, s_carries_line);
                if (cl == NULL)
                    goto error_done;
                int truth = PyObject_IsTrue(cl);
                Py_DECREF(cl);
                if (truth < 0)
                    goto error_done;
                occ = SLOT(hub, truth ? off_h_t_line : off_h_t_ctrl);
            }
            res = SLOT(hub, off_h_egress);
            if (occ == NULL || res == NULL || !g_fast
                    || !Py_IS_TYPE(res, g_ResourceType))
                goto egress_py;
            acq = SLOT(res, off_r_acquire);
            if (acq == NULL || !Py_IS_TYPE(acq, g_AcquireType))
                goto egress_py;
            Py_XSETREF(co->c, Py_NewRef(occ));
            Py_XSETREF(co->d, Py_NewRef(res));
            co->state = EG_ACQ;
            *result = Py_NewRef(acq);
            return PYGEN_NEXT;
        egress_py:
            if (coro_delegate_py(co, g_EgressSendPy, hub, msg, NULL) < 0)
                goto error_done;
            return coro_step(co, Py_None, NULL, result);
        }
        if (co->state == EG_ACQ) {
            /* the resource is ours; enter the try block */
            if (exc != NULL)
                goto reraise_done;      /* acquire yield is outside it */
            co->state = EG_OCC;
            *result = Py_NewRef(co->c);
            return PYGEN_NEXT;
        }
        if (co->state == EG_OCC) {
            /* finally: release — on normal resume and on throw */
            if (resource_release(co->d) < 0)
                goto error_done;
            if (exc != NULL)
                goto reraise_done;
            PyObject *net = Py_XNewRef(SLOT(hub, off_h_net));
            if (net == NULL) {
                net = PyObject_GetAttr(hub, s_net);
                if (net == NULL)
                    goto error_done;
            }
            /* fetched generically so fuzz wrappers stay honored */
            PyObject *sender = PyObject_GetAttr(net, s_send);
            Py_DECREF(net);
            if (sender == NULL)
                goto error_done;
            PyObject *sres = PyObject_CallOneArg(sender, msg);
            Py_DECREF(sender);
            if (sres == NULL)
                goto error_done;
            Py_DECREF(sres);
            co->state = ST_DONE;
            *result = Py_NewRef(Py_None);
            return PYGEN_RETURN;
        }
        break;
    }
    /* ------------------ CacheController.load ------------------ */
    case CORO_LOAD: {
        PyObject *ctrl = co->a, *addr_obj = co->b;
        if (co->state == 0) {
            if (exc != NULL)
                goto reraise_done;
            PyObject *t1 = SLOT(ctrl, off_c_t_l1);
            if (t1 == NULL) {
                if (coro_delegate_py(co, g_CtrlLoadPy, ctrl, addr_obj,
                                     NULL) < 0)
                    goto error_done;
                return coro_step(co, Py_None, NULL, result);
            }
            co->state = LD_L1;
            *result = Py_NewRef(t1);
            return PYGEN_NEXT;
        }
        if (co->state == LD_L1) {
            if (exc != NULL)
                goto reraise_done;
            PyObject *val = NULL;
            int r = load_level(co->c, addr_obj, co->ll, &val);
            if (r < 0)
                goto error_done;
            if (r == 1) {
                co->state = ST_DONE;
                *result = val;
                return PYGEN_RETURN;
            }
            PyObject *t2 = SLOT(ctrl, off_c_t_l2);
            *result = t2 != NULL ? Py_NewRef(t2)
                                 : PyObject_GetAttrString(ctrl, "_t_l2");
            if (*result == NULL)
                goto error_done;
            co->state = LD_L2;
            return PYGEN_NEXT;
        }
        if (co->state == LD_L2) {
            if (exc != NULL)
                goto reraise_done;
            PyObject *val = NULL;
            int r = load_level(co->d, addr_obj, co->ll, &val);
            if (r < 0)
                goto error_done;
            if (r == 1) {
                PyObject *fr = PyObject_CallMethodObjArgs(
                    ctrl, s_fill_l1, addr_obj, val, NULL);
                if (fr == NULL) {
                    Py_DECREF(val);
                    goto error_done;
                }
                Py_DECREF(fr);
                co->state = ST_DONE;
                *result = val;
                return PYGEN_RETURN;
            }
            /* both levels missed: delegate the cold fetch tail */
            PyObject *sub = PyObject_CallMethodObjArgs(
                ctrl, s_load_miss, addr_obj, NULL);
            if (sub == NULL)
                goto error_done;
            Py_XSETREF(co->sub, sub);
            co->state = LD_MISS;
            int rr = sub_send(co, Py_None, result);
            if (rr < 0)
                goto error_done;
            if (rr == 1)
                return PYGEN_NEXT;
            co->state = ST_DONE;
            return PYGEN_RETURN;
        }
        if (co->state == LD_MISS) {
            int rr = exc != NULL ? sub_throw(co, exc, result)
                                 : sub_send(co, arg, result);
            if (rr < 0)
                goto error_done;
            if (rr == 1)
                return PYGEN_NEXT;
            co->state = ST_DONE;
            return PYGEN_RETURN;
        }
        break;
    }
    /* --------------- CacheController.spin_until --------------- */
    case CORO_SPIN: {
        PyObject *ctrl = co->a, *addr_obj = co->b;
        PyObject *value = NULL;
        if (co->state == 0) {
            if (exc != NULL)
                goto reraise_done;
            /* meta = self._line_meta(addr) (get-or-create, so the
             * generic call below is safe to repeat) */
            long long line = co->ll - co->ll % g_line_bytes;
            PyObject *meta = NULL;
            PyObject *meta_map = SLOT(ctrl, off_c_meta);
            PyObject *line_obj = PyLong_FromLongLong(line);
            if (line_obj == NULL)
                goto error_done;
            if (meta_map != NULL && PyDict_CheckExact(meta_map)) {
                meta = PyDict_GetItemWithError(meta_map, line_obj);
                if (meta == NULL && PyErr_Occurred()) {
                    Py_DECREF(line_obj);
                    goto error_done;
                }
                Py_XINCREF(meta);
            }
            Py_DECREF(line_obj);
            if (meta == NULL) {
                meta = PyObject_CallMethod(ctrl, "_line_meta", "O",
                                           addr_obj);
                if (meta == NULL)
                    goto error_done;
            }
            if (!Py_IS_TYPE(meta, g_LineMetaType)
                    || SLOT(meta, off_lm_gatewait) == NULL
                    || SLOT(meta, off_lm_version) == NULL) {
                Py_DECREF(meta);
                if (coro_delegate_py(co, g_CtrlSpinPy, ctrl, addr_obj,
                                     co->c) < 0)
                    goto error_done;
                return coro_step(co, Py_None, NULL, result);
            }
            Py_XSETREF(co->d, meta);
            Py_XSETREF(co->e, Py_NewRef(SLOT(meta, off_lm_gatewait)));
            goto spin_next_load;
        }
        if (co->state == SP_LOAD) {
            int rr = exc != NULL ? sub_throw(co, exc, result)
                                 : sub_send(co, arg, result);
            if (rr < 0)
                goto error_done;
            if (rr == 1)
                return PYGEN_NEXT;
            value = *result;
            *result = NULL;
            goto spin_check;
        }
        if (co->state == SP_GATE) {
            if (exc != NULL)
                goto reraise_done;
            if (inc_counter(ctrl, off_c_spinw, "spin_wakeups") < 0)
                goto error_done;
            goto spin_next_load;
        }
        break;

    spin_next_load:
        {
            PyObject *v = SLOT(co->d, off_lm_version);
            if (v == NULL) {
                v = PyObject_GetAttrString(co->d, "version");
                if (v == NULL)
                    goto error_done;
                Py_XSETREF(co->f, v);
            }
            else {
                Py_XSETREF(co->f, Py_NewRef(v));
            }
            PyObject *sub = load_coro_or_py(ctrl, addr_obj);
            if (sub == NULL)
                goto error_done;
            Py_XSETREF(co->sub, sub);
            co->state = SP_LOAD;
            int rr = sub_send(co, Py_None, result);
            if (rr < 0)
                goto error_done;
            if (rr == 1)
                return PYGEN_NEXT;
            value = *result;
            *result = NULL;
            /* fall through: load returned without yielding */
        }
    spin_check:
        {
            PyObject *ok = PyObject_CallOneArg(co->c, value);
            if (ok == NULL) {
                Py_DECREF(value);
                goto error_done;
            }
            int truth = PyObject_IsTrue(ok);
            Py_DECREF(ok);
            if (truth < 0) {
                Py_DECREF(value);
                goto error_done;
            }
            if (truth) {
                co->state = ST_DONE;
                *result = value;
                return PYGEN_RETURN;
            }
            Py_DECREF(value);
            /* the line changed under the read: re-check immediately
             * instead of parking on a pulse that already happened */
            PyObject *cur = SLOT(co->d, off_lm_version);
            long long c1, c2;
            int changed;
            if (cur != NULL && ll_of(cur, &c1) == 0
                    && ll_of(co->f, &c2) == 0) {
                changed = c1 != c2;
            }
            else {
                if (cur == NULL) {
                    cur = PyObject_GetAttrString(co->d, "version");
                    if (cur == NULL)
                        goto error_done;
                    changed = PyObject_RichCompareBool(cur, co->f, Py_NE);
                    Py_DECREF(cur);
                }
                else {
                    changed = PyObject_RichCompareBool(cur, co->f, Py_NE);
                }
                if (changed < 0)
                    goto error_done;
            }
            if (changed)
                goto spin_next_load;
            co->state = SP_GATE;
            *result = Py_NewRef(co->e);
            return PYGEN_NEXT;
        }
    }
    /* ------------- CacheController._do_invalidate ------------- */
    case CORO_INV: {
        PyObject *ctrl = co->a, *msg = co->b;
        if (co->state == 0) {
            if (exc != NULL)
                goto reraise_done;
            PyObject *t2 = SLOT(ctrl, off_c_t_l2);
            if (t2 == NULL) {
                if (coro_delegate_py(co, g_CtrlInvPy, ctrl, msg,
                                     NULL) < 0)
                    goto error_done;
                return coro_step(co, Py_None, NULL, result);
            }
            co->state = IV_L2;
            *result = Py_NewRef(t2);
            return PYGEN_NEXT;
        }
        if (co->state == IV_L2) {
            if (exc != NULL)
                goto reraise_done;
            PyObject *addr_obj = SLOT(msg, off_m_addr);
            long long addr = co->ll;
            PyObject *line_obj =
                PyLong_FromLongLong(addr - addr % g_line_bytes);
            if (line_obj == NULL || addr_obj == NULL) {
                Py_XDECREF(line_obj);
                if (addr_obj == NULL)
                    PyErr_SetString(PyExc_AttributeError, "addr");
                goto error_done;
            }
            /* poison any racing non-exclusive MSHR */
            PyObject *inflight = SLOT(ctrl, off_c_inflight);
            PyObject *mshr = NULL;
            int own_mshr = 0;
            if (inflight != NULL && PyDict_CheckExact(inflight)) {
                mshr = PyDict_GetItemWithError(inflight, line_obj);
                if (mshr == NULL && PyErr_Occurred())
                    goto iv_err_line;
            }
            else if (inflight != NULL) {
                PyObject *g = PyObject_CallMethod(inflight, "get", "O",
                                                  line_obj);
                if (g == NULL)
                    goto iv_err_line;
                if (g == Py_None) {
                    Py_DECREF(g);
                }
                else {
                    mshr = g;
                    own_mshr = 1;
                }
            }
            if (mshr != NULL) {
                int excl;
                if (PyDict_CheckExact(mshr)) {
                    PyObject *ex =
                        PyDict_GetItemWithError(mshr, s_exclusive);
                    if (ex == NULL) {
                        if (!PyErr_Occurred())
                            PyErr_SetObject(PyExc_KeyError, s_exclusive);
                        goto iv_err_mshr;
                    }
                    excl = PyObject_IsTrue(ex);
                }
                else {
                    PyObject *ex = PyObject_GetItem(mshr, s_exclusive);
                    if (ex == NULL)
                        goto iv_err_mshr;
                    excl = PyObject_IsTrue(ex);
                    Py_DECREF(ex);
                }
                if (excl < 0)
                    goto iv_err_mshr;
                if (!excl) {
                    int sr = PyDict_CheckExact(mshr)
                        ? PyDict_SetItem(mshr, s_poisoned, Py_True)
                        : PyObject_SetItem(mshr, s_poisoned, Py_True);
                    if (sr < 0)
                        goto iv_err_mshr;
                }
                if (own_mshr)
                    Py_DECREF(mshr);
            }
            if (cache_invalidate(SLOT(ctrl, off_c_l1), addr_obj,
                                 addr) < 0)
                goto iv_err_line;
            if (cache_invalidate(SLOT(ctrl, off_c_l2), addr_obj,
                                 addr) < 0)
                goto iv_err_line;
            PyObject *resv = SLOT(ctrl, off_c_resv);
            if (resv != NULL && resv != Py_None) {
                int eq = PyObject_RichCompareBool(resv, line_obj, Py_EQ);
                if (eq < 0)
                    goto iv_err_line;
                if (eq)
                    slot_store(ctrl, off_c_resv, Py_NewRef(Py_None));
            }
            if (ctrl_line_changed(ctrl, addr_obj, line_obj) < 0)
                goto iv_err_line;
            Py_DECREF(line_obj);
            /* the INV_ACK back to the requester's collection latch */
            {
                PyObject *ack = msg_new(g_InvAckKind,
                                        SLOT(ctrl, off_c_node),
                                        SLOT(msg, off_m_src), addr_obj,
                                        SLOT(msg, off_m_payload),
                                        SLOT(ctrl, off_c_cpu),
                                        g_InvAckBytes);
                if (ack == NULL)
                    goto error_done;
                PyObject *hub = SLOT(ctrl, off_c_hub);
                PyObject *sub = NULL;
                if (hub != NULL) {
                    sub = egress_coro_or_py(hub, ack);
                }
                else {
                    PyErr_SetString(PyExc_AttributeError, "hub");
                }
                Py_DECREF(ack);
                if (sub == NULL)
                    goto error_done;
                Py_XSETREF(co->sub, sub);
            }
            co->state = IV_ACK;
            int rr = sub_send(co, Py_None, result);
            if (rr < 0)
                goto error_done;
            if (rr == 1)
                return PYGEN_NEXT;
            Py_CLEAR(*result);
            co->state = ST_DONE;
            *result = Py_NewRef(Py_None);
            return PYGEN_RETURN;
        iv_err_mshr:
            if (own_mshr)
                Py_XDECREF(mshr);
        iv_err_line:
            Py_DECREF(line_obj);
            goto error_done;
        }
        if (co->state == IV_ACK) {
            int rr = exc != NULL ? sub_throw(co, exc, result)
                                 : sub_send(co, arg, result);
            if (rr < 0)
                goto error_done;
            if (rr == 1)
                return PYGEN_NEXT;
            Py_CLEAR(*result);
            co->state = ST_DONE;
            *result = Py_NewRef(Py_None);
            return PYGEN_RETURN;
        }
        break;
    }
    /* --------------- HomeEngine._serve_get_s ------------------ */
    case CORO_GETS: {
        PyObject *eng = co->a, *msg = co->b;
        if (co->state == 0) {
            if (exc != NULL)
                goto reraise_done;
            PyObject *dir = SLOT(eng, off_he_dir);
            long long addr = co->ll;
            PyObject *ent = NULL;
            if (dir != NULL) {
                /* get-or-create, so the twin repeating it is safe */
                PyObject *line_obj =
                    PyLong_FromLongLong(addr - addr % g_line_bytes);
                if (line_obj == NULL)
                    goto error_done;
                ent = PyObject_CallMethodObjArgs(dir, s_entry, line_obj,
                                                 NULL);
                Py_DECREF(line_obj);
                if (ent == NULL)
                    goto error_done;
            }
            PyObject *busy = NULL, *acq = NULL;
            if (ent == NULL || !Py_IS_TYPE(ent, g_DirEntType) || !g_fast
                    || (busy = SLOT(ent, off_de_busy)) == NULL
                    || !Py_IS_TYPE(busy, g_ResourceType)
                    || (acq = SLOT(busy, off_r_acquire)) == NULL
                    || !Py_IS_TYPE(acq, g_AcquireType)) {
                Py_XDECREF(ent);
                if (coro_delegate_py(co, g_ServeGetSPy, eng, msg,
                                     NULL) < 0)
                    goto error_done;
                return coro_step(co, Py_None, NULL, result);
            }
            if (inc_counter(eng, off_he_gets, "get_s_served") < 0) {
                Py_DECREF(ent);
                goto error_done;
            }
            Py_XSETREF(co->c, ent);
            Py_XSETREF(co->d, Py_NewRef(busy));
            co->state = GS_ACQ;
            *result = Py_NewRef(acq);
            return PYGEN_NEXT;
        }
        if (co->state == GS_ACQ) {
            /* the busy bit is ours; enter the try block */
            if (exc != NULL)
                goto reraise_done;  /* acquire yield precedes the try */
            PyObject *td = SLOT(eng, off_he_tdir);
            if (td == NULL) {
                PyErr_SetString(PyExc_AttributeError, "_t_dir");
                goto gets_err_rel;
            }
            co->state = GS_DIR;
            *result = Py_NewRef(td);
            return PYGEN_NEXT;
        }
        if (co->state == GS_DIR) {
            if (exc != NULL) {
                /* finally: release, then let the throw propagate */
                if (resource_release(co->d) < 0)
                    goto error_done;
                goto reraise_done;
            }
            PyObject *ent = co->c;
            PyObject *st = SLOT(ent, off_de_state);
            if (st == NULL) {
                PyErr_SetString(PyExc_AttributeError, "state");
                goto gets_err_rel;
            }
            if (st == g_DirExclusive) {
                /* 3-hop tail stays in Python (rare for sync lines) */
                PyObject *sub = PyObject_CallMethodObjArgs(
                    eng, s_get_s_owned, msg, ent, NULL);
                if (sub == NULL)
                    goto gets_err_rel;
                Py_XSETREF(co->sub, sub);
                co->state = GS_OWNED;
                int rr = sub_send(co, Py_None, result);
                if (rr < 0)
                    goto gets_err_rel;
                if (rr == 1)
                    return PYGEN_NEXT;
                Py_CLEAR(*result);
                goto gets_finish;
            }
            /* clean read (HomeEngine._get_s_clean replica) */
            {
                PyObject *backing = SLOT(eng, off_he_backing);
                PyObject *cfg = SLOT(eng, off_he_config);
                PyObject *sim_obj = SLOT(eng, off_he_sim);
                PyObject *req = SLOT(msg, off_m_requester);
                PyObject *line_obj = SLOT(ent, off_de_line);
                PyObject *mask = SLOT(ent, off_de_mask);
                if (backing == NULL || cfg == NULL || sim_obj == NULL
                        || req == NULL || line_obj == NULL
                        || mask == NULL) {
                    PyErr_SetString(PyExc_AttributeError,
                                    "home engine slots incomplete");
                    goto gets_err_rel;
                }
                PyObject *lb = PyObject_GetAttr(cfg, s_line_bytes);
                if (lb == NULL)
                    goto gets_err_rel;
                PyObject *words = PyObject_CallMethodObjArgs(
                    backing, s_read_line, line_obj, lb, NULL);
                Py_DECREF(lb);
                if (words == NULL)
                    goto gets_err_rel;
                PyObject *bit = PyNumber_Lshift(g_one, req);
                PyObject *nmask =
                    bit != NULL ? PyNumber_Or(mask, bit) : NULL;
                Py_XDECREF(bit);
                if (nmask == NULL) {
                    Py_DECREF(words);
                    goto gets_err_rel;
                }
                slot_store(ent, off_de_mask, nmask);
                slot_store(ent, off_de_state, Py_NewRef(g_DirShared));
                if (inc_counter(ent, off_de_version, "version") < 0) {
                    Py_DECREF(words);
                    goto gets_err_rel;
                }
                PyObject *rf = rf_coro_or_py(eng, msg, words);
                Py_DECREF(words);
                if (rf == NULL)
                    goto gets_err_rel;
                PyObject *name = SLOT(eng, off_he_name_rf);
                PyObject *sr = name != NULL
                    ? PyObject_CallMethodObjArgs(sim_obj, s_spawn, rf,
                                                 name, NULL)
                    : PyObject_CallMethodObjArgs(sim_obj, s_spawn, rf,
                                                 NULL);
                Py_DECREF(rf);
                if (sr == NULL)
                    goto gets_err_rel;
                Py_DECREF(sr);
            }
            goto gets_finish;
        gets_err_rel:
            /* finally under an in-flight error: release with the error
             * parked; a failing release wins (replaces it) */
            {
                PyObject *t, *v, *tb;
                PyErr_Fetch(&t, &v, &tb);
                if (resource_release(co->d) < 0) {
                    Py_XDECREF(t);
                    Py_XDECREF(v);
                    Py_XDECREF(tb);
                }
                else {
                    PyErr_Restore(t, v, tb);
                }
            }
            goto error_done;
        gets_finish:
            if (resource_release(co->d) < 0)
                goto error_done;
            co->state = ST_DONE;
            *result = Py_NewRef(Py_None);
            return PYGEN_RETURN;
        }
        if (co->state == GS_OWNED) {
            int rr = exc != NULL ? sub_throw(co, exc, result)
                                 : sub_send(co, arg, result);
            if (rr < 0)
                goto gets_err_rel;
            if (rr == 1)
                return PYGEN_NEXT;
            Py_CLEAR(*result);
            goto gets_finish;
        }
        break;
    }
    /* ------------- HomeEngine._finish_clean_read -------------- */
    case CORO_RF: {
        PyObject *eng = co->a, *msg = co->b;
        if (co->state == 0) {
            if (exc != NULL)
                goto reraise_done;
            PyObject *dram = SLOT(eng, off_he_dram);
            PyObject *chan = NULL, *acq = NULL, *occ = NULL, *resid_obj;
            long long resid = 0;
            if (dram == NULL || !Py_IS_TYPE(dram, g_DramType) || !g_fast
                    || (chan = SLOT(dram, off_dr_chan)) == NULL
                    || !Py_IS_TYPE(chan, g_ResourceType)
                    || (acq = SLOT(chan, off_r_acquire)) == NULL
                    || !Py_IS_TYPE(acq, g_AcquireType)
                    || (occ = SLOT(dram, off_dr_t_occ)) == NULL
                    || SLOT(dram, off_dr_t_res) == NULL
                    || (resid_obj = SLOT(dram, off_dr_resid)) == NULL
                    || ll_of(resid_obj, &resid) < 0) {
                PyErr_Clear();
                if (coro_delegate_py(co, g_FinishCleanPy, eng, msg,
                                     co->c) < 0)
                    goto error_done;
                return coro_step(co, Py_None, NULL, result);
            }
            if (inc_counter(dram, off_dr_lineacc, "line_accesses") < 0)
                goto error_done;
            co->ll = resid;
            Py_XSETREF(co->d, Py_NewRef(chan));
            Py_XSETREF(co->e, Py_NewRef(occ));
            co->state = RF_ACQ;
            *result = Py_NewRef(acq);
            return PYGEN_NEXT;
        }
        if (co->state == RF_ACQ) {
            /* the channel is ours; enter the try block */
            if (exc != NULL)
                goto reraise_done;
            co->state = RF_OCC;
            *result = Py_NewRef(co->e);
            return PYGEN_NEXT;
        }
        if (co->state == RF_OCC) {
            /* finally: release — on normal resume and on throw */
            if (resource_release(co->d) < 0)
                goto error_done;
            if (exc != NULL)
                goto reraise_done;
            if (co->ll > 0) {
                PyObject *dram = SLOT(eng, off_he_dram);
                PyObject *tres =
                    dram != NULL ? SLOT(dram, off_dr_t_res) : NULL;
                if (tres == NULL) {
                    PyErr_SetString(PyExc_AttributeError, "_t_line_res");
                    goto error_done;
                }
                co->state = RF_RES;
                *result = Py_NewRef(tres);
                return PYGEN_NEXT;
            }
            goto rf_send;
        }
        if (co->state == RF_RES) {
            if (exc != NULL)
                goto reraise_done;
            goto rf_send;
        }
        if (co->state == RF_SEND) {
            int rr = exc != NULL ? sub_throw(co, exc, result)
                                 : sub_send(co, arg, result);
            if (rr < 0)
                goto error_done;
            if (rr == 1)
                return PYGEN_NEXT;
            Py_CLEAR(*result);
            co->state = ST_DONE;
            *result = Py_NewRef(Py_None);
            return PYGEN_RETURN;
        }
        break;

    rf_send:
        {
            PyObject *m = msg_new(g_DataSKind, SLOT(eng, off_he_node),
                                  SLOT(msg, off_m_src),
                                  SLOT(msg, off_m_addr), co->c,
                                  SLOT(msg, off_m_requester),
                                  g_DataSBytes);
            if (m == NULL)
                goto error_done;
            PyObject *rt = SLOT(msg, off_m_reply_to);
            if (rt != NULL && rt != Py_None)
                slot_store(m, off_m_reply_to, Py_NewRef(rt));
            PyObject *hub = SLOT(eng, off_he_hub);
            PyObject *sub = NULL;
            if (hub != NULL)
                sub = egress_coro_or_py(hub, m);
            else
                PyErr_SetString(PyExc_AttributeError, "hub");
            Py_DECREF(m);
            if (sub == NULL)
                goto error_done;
            Py_XSETREF(co->sub, sub);
            co->state = RF_SEND;
            int rr = sub_send(co, Py_None, result);
            if (rr < 0)
                goto error_done;
            if (rr == 1)
                return PYGEN_NEXT;
            Py_CLEAR(*result);
            co->state = ST_DONE;
            *result = Py_NewRef(Py_None);
            return PYGEN_RETURN;
        }
    }
    }
    PyErr_Format(PyExc_SystemError, "ModelCoro: bad state %d/%d",
                 co->port, co->state);
    co->state = ST_DONE;
    return PYGEN_ERROR;

reraise_done:
    co->state = ST_DONE;
    PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
    return PYGEN_ERROR;
error_done:
    co->state = ST_DONE;
    return PYGEN_ERROR;
}

/* run pending finally blocks (egress release) and close any sub */
static int
coro_shutdown(CoroObject *co)
{
    int bad = 0;
    if ((co->port == CORO_EGRESS && co->state == EG_OCC)
            || (co->port == CORO_RF && co->state == RF_OCC)) {
        if (co->d != NULL && resource_release(co->d) < 0)
            bad = 1;
    }
    if (co->sub != NULL) {
        PyObject *sub = co->sub;
        co->sub = NULL;
        PyObject *r = PyObject_CallMethod(sub, "close", NULL);
        Py_DECREF(sub);
        if (r == NULL)
            bad = 1;
        else
            Py_DECREF(r);
    }
    /* the GET_S finally releases after its sub's own finalizers ran */
    if (co->port == CORO_GETS
            && (co->state == GS_DIR || co->state == GS_OWNED)
            && co->d != NULL) {
        if (resource_release(co->d) < 0)
            bad = 1;
    }
    co->state = ST_DONE;
    return bad ? -1 : 0;
}

static PySendResult
coro_am_send(PyObject *self, PyObject *arg, PyObject **result)
{
    return coro_step((CoroObject *)self, arg, NULL, result);
}

static PyObject *
coro_iternext(PyObject *self)
{
    PyObject *res = NULL;
    switch (coro_step((CoroObject *)self, Py_None, NULL, &res)) {
    case PYGEN_NEXT:
        return res;
    case PYGEN_RETURN:
        set_stop_iteration_exc(res == Py_None ? NULL : res);
        Py_XDECREF(res);
        return NULL;
    default:
        return NULL;
    }
}

static PyObject *
coro_send_meth(PyObject *self, PyObject *arg)
{
    PyObject *res = NULL;
    switch (coro_step((CoroObject *)self, arg, NULL, &res)) {
    case PYGEN_NEXT:
        return res;
    case PYGEN_RETURN:
        set_stop_iteration_exc(res);
        Py_XDECREF(res);
        return NULL;
    default:
        return NULL;
    }
}

static PyObject *
coro_throw_meth(PyObject *self, PyObject *args)
{
    PyObject *typ, *val = NULL, *tb = NULL;
    if (!PyArg_ParseTuple(args, "O|OO:throw", &typ, &val, &tb))
        return NULL;
    PyObject *exc;
    if (PyExceptionInstance_Check(typ)
            && (val == NULL || val == Py_None)) {
        exc = Py_NewRef(typ);
    }
    else if (PyExceptionClass_Check(typ)) {
        PyErr_SetObject(typ, val == Py_None ? NULL : val);
        PyObject *t, *v, *tb2;
        PyErr_Fetch(&t, &v, &tb2);
        PyErr_NormalizeException(&t, &v, &tb2);
        exc = v;
        Py_XDECREF(t);
        Py_XDECREF(tb2);
        if (exc == NULL)
            return NULL;
    }
    else {
        PyErr_SetString(PyExc_TypeError,
                        "exceptions must be classes or instances");
        return NULL;
    }
    if (tb != NULL && tb != Py_None
            && PyException_SetTraceback(exc, tb) < 0) {
        Py_DECREF(exc);
        return NULL;
    }
    PyObject *res = NULL;
    PySendResult sr =
        coro_step((CoroObject *)self, NULL, exc, &res);
    Py_DECREF(exc);
    switch (sr) {
    case PYGEN_NEXT:
        return res;
    case PYGEN_RETURN:
        set_stop_iteration_exc(res);
        Py_XDECREF(res);
        return NULL;
    default:
        return NULL;
    }
}

static PyObject *
coro_close_meth(PyObject *self, PyObject *Py_UNUSED(ignored))
{
    if (coro_shutdown((CoroObject *)self) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
coro_traverse(PyObject *self, visitproc visit, void *arg)
{
    CoroObject *co = (CoroObject *)self;
    Py_VISIT(co->a);
    Py_VISIT(co->b);
    Py_VISIT(co->c);
    Py_VISIT(co->d);
    Py_VISIT(co->e);
    Py_VISIT(co->f);
    Py_VISIT(co->sub);
    return 0;
}

static int
coro_clear(PyObject *self)
{
    CoroObject *co = (CoroObject *)self;
    Py_CLEAR(co->a);
    Py_CLEAR(co->b);
    Py_CLEAR(co->c);
    Py_CLEAR(co->d);
    Py_CLEAR(co->e);
    Py_CLEAR(co->f);
    Py_CLEAR(co->sub);
    return 0;
}

static void
coro_dealloc(PyObject *self)
{
    CoroObject *co = (CoroObject *)self;
    PyObject_GC_UnTrack(self);
    if (co->state > 0 || co->sub != NULL) {
        /* run finalizers the way a dying suspended generator would */
        PyObject *et, *ev, *etb;
        PyErr_Fetch(&et, &ev, &etb);
        if (coro_shutdown(co) < 0)
            PyErr_WriteUnraisable(self);
        PyErr_Restore(et, ev, etb);
    }
    (void)coro_clear(self);
    PyObject_GC_Del(self);
}

static PyAsyncMethods coro_as_async = {
    .am_send = coro_am_send,
};

static PyMethodDef coro_methods[] = {
    {"send", coro_send_meth, METH_O,
     "Resume the coroutine with a value."},
    {"throw", coro_throw_meth, METH_VARARGS,
     "Raise an exception inside the coroutine."},
    {"close", coro_close_meth, METH_NOARGS,
     "Run pending finalizers and mark the coroutine finished."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject Coro_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim.backends._accel_core.ModelCoro",
    .tp_basicsize = sizeof(CoroObject),
    .tp_dealloc = coro_dealloc,
    .tp_as_async = &coro_as_async,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = coro_traverse,
    .tp_clear = coro_clear,
    .tp_iter = PyObject_SelfIter,
    .tp_iternext = coro_iternext,
    .tp_methods = coro_methods,
    .tp_doc = "Compiled model coroutine (egress/load/spin/invalidate).",
};

/* ---- module-level factories (what the Accel subclasses call) ---- */

static PyObject *
mod_egress_send(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    (void)mod;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "egress_send expects (hub, msg)");
        return NULL;
    }
    if (g_EgressSendPy == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "model paths not armed");
        return NULL;
    }
    return egress_coro_or_py(args[0], args[1]);
}

static PyObject *
mod_ctrl_load(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    (void)mod;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "ctrl_load expects (ctrl, addr)");
        return NULL;
    }
    if (g_CtrlLoadPy == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "model paths not armed");
        return NULL;
    }
    return load_coro_or_py(args[0], args[1]);
}

static PyObject *
mod_ctrl_spin_until(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    (void)mod;
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "ctrl_spin_until expects (ctrl, addr, predicate)");
        return NULL;
    }
    if (g_CtrlSpinPy == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "model paths not armed");
        return NULL;
    }
    return spin_coro_or_py(args[0], args[1], args[2]);
}

static PyObject *
mod_ctrl_do_invalidate(PyObject *mod, PyObject *const *args,
                       Py_ssize_t nargs)
{
    (void)mod;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "ctrl_do_invalidate expects (ctrl, msg)");
        return NULL;
    }
    if (g_CtrlInvPy == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "model paths not armed");
        return NULL;
    }
    return inv_coro_or_py(args[0], args[1]);
}

static PyObject *
mod_serve_get_s(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    (void)mod;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "serve_get_s expects (engine, msg)");
        return NULL;
    }
    if (g_ServeGetSPy == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "model paths not armed");
        return NULL;
    }
    return gets_coro_or_py(args[0], args[1]);
}

static PyObject *
mod_finish_clean_read(PyObject *mod, PyObject *const *args,
                      Py_ssize_t nargs)
{
    (void)mod;
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "finish_clean_read expects (engine, msg, words)");
        return NULL;
    }
    if (g_FinishCleanPy == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "model paths not armed");
        return NULL;
    }
    return rf_coro_or_py(args[0], args[1], args[2]);
}

/* Bind the model layer's types/callables and resolve their slot
 * offsets.  Called lazily by repro.sim.backends.model (the model
 * classes import this module, so module init cannot).  Returns whether
 * the compiled model paths are armed; a mismatched slot layout simply
 * reports False and every path stays pure Python. */
static PyObject *
mod_arm_model(PyObject *mod, PyObject *spec)
{
    (void)mod;
    if (!PyDict_Check(spec)) {
        PyErr_SetString(PyExc_TypeError, "arm_model expects a dict");
        return NULL;
    }
    g_model_fast = 0;
#define FETCH(var, name)                                            \
    do {                                                            \
        PyObject *obj = PyDict_GetItemString(spec, name);           \
        if (obj == NULL) {                                          \
            PyErr_Format(PyExc_KeyError, "arm_model: missing %s",   \
                         name);                                     \
            return NULL;                                            \
        }                                                           \
        Py_XSETREF(var, Py_NewRef(obj));                            \
    } while (0)
#define FETCH_TYPE(var, name)                                       \
    do {                                                            \
        PyObject *obj = PyDict_GetItemString(spec, name);           \
        if (obj == NULL || !PyType_Check(obj)) {                    \
            PyErr_Format(PyExc_TypeError,                           \
                         "arm_model: %s must be a type", name);     \
            return NULL;                                            \
        }                                                           \
        Py_XSETREF(var, (PyTypeObject *)Py_NewRef(obj));            \
    } while (0)
    FETCH_TYPE(g_MsgType, "Message");
    FETCH_TYPE(g_HubType, "Hub");
    FETCH_TYPE(g_CtrlType, "CacheController");
    FETCH_TYPE(g_CacheType, "Cache");
    FETCH_TYPE(g_LineType, "CacheLine");
    FETCH_TYPE(g_LineMetaType, "LineMeta");
    FETCH_TYPE(g_WaveType, "EgressWave");
    FETCH_TYPE(g_StatsType, "TrafficStats");
    FETCH_TYPE(g_HomeType, "HomeEngine");
    FETCH_TYPE(g_DirEntType, "DirectoryEntry");
    FETCH_TYPE(g_DramType, "Dram");
    FETCH(g_WordUpdateKind, "WORD_UPDATE");
    FETCH(g_InvalidState, "INVALID");
    FETCH(g_MsgIds, "msg_ids");
    FETCH(g_NetSend, "net_send");
    FETCH(g_NetDeliver, "net_deliver");
    FETCH(g_HubReceive, "hub_receive");
    FETCH(g_WaveGrantedPy, "wave_granted");
    FETCH(g_WaveExpirePy, "wave_expire");
    FETCH(g_EgressSendPy, "hub_egress_send");
    FETCH(g_CtrlLoadPy, "ctrl_load");
    FETCH(g_CtrlSpinPy, "ctrl_spin_until");
    FETCH(g_CtrlInvPy, "ctrl_do_invalidate");
    FETCH(g_InvAckKind, "INV_ACK");
    FETCH(g_ServeGetSPy, "serve_get_s");
    FETCH(g_FinishCleanPy, "finish_clean_read");
    FETCH(g_DataSKind, "DATA_S");
    FETCH(g_DirExclusive, "DIR_EXCLUSIVE");
    FETCH(g_DirShared, "DIR_SHARED");
#undef FETCH
#undef FETCH_TYPE
    {
        PyObject *pb = PyObject_GetAttr(g_InvAckKind, s_packet_bytes);
        if (pb == NULL)
            return NULL;
        Py_XSETREF(g_InvAckBytes, pb);
        pb = PyObject_GetAttr(g_DataSKind, s_packet_bytes);
        if (pb == NULL)
            return NULL;
        Py_XSETREF(g_DataSBytes, pb);
    }
    {
        PyObject *lb = PyDict_GetItemString(spec, "LINE_BYTES");
        PyObject *wb = PyDict_GetItemString(spec, "WORD_BYTES");
        if (lb == NULL || wb == NULL
                || ll_of(lb, &g_line_bytes) < 0 || g_line_bytes <= 0
                || ll_of(wb, &g_word_bytes) < 0 || g_word_bytes <= 0) {
            PyErr_SetString(PyExc_TypeError,
                            "arm_model: LINE_BYTES/WORD_BYTES must be "
                            "positive ints");
            return NULL;
        }
    }
    if (!PyIter_Check(g_MsgIds)) {
        PyErr_SetString(PyExc_TypeError,
                        "arm_model: msg_ids must be an iterator");
        return NULL;
    }
    PyObject *mcls = (PyObject *)g_MsgType;
    off_m_kind = slot_off(mcls, "kind");
    off_m_src = slot_off(mcls, "src_node");
    off_m_dst = slot_off(mcls, "dst_node");
    off_m_addr = slot_off(mcls, "addr");
    off_m_value = slot_off(mcls, "value");
    off_m_payload = slot_off(mcls, "payload");
    off_m_reply_to = slot_off(mcls, "reply_to");
    off_m_requester = slot_off(mcls, "requester");
    off_m_dst_cpu = slot_off(mcls, "dst_cpu");
    off_m_retransmit = slot_off(mcls, "is_retransmit");
    off_m_size = slot_off(mcls, "size_bytes");
    off_m_id = slot_off(mcls, "msg_id");
    off_h_routes = slot_off((PyObject *)g_HubType, "_routes");
    off_h_controllers = slot_off((PyObject *)g_HubType, "controllers");
    off_h_net = slot_off((PyObject *)g_HubType, "net");
    off_h_egress = slot_off((PyObject *)g_HubType, "_egress");
    off_h_t_update = slot_off((PyObject *)g_HubType, "_t_egress_update");
    off_h_t_ctrl = slot_off((PyObject *)g_HubType, "_t_egress_ctrl");
    off_h_t_line = slot_off((PyObject *)g_HubType, "_t_egress_line");
    off_c_l1 = slot_off((PyObject *)g_CtrlType, "l1");
    off_c_l2 = slot_off((PyObject *)g_CtrlType, "l2");
    off_c_resv = slot_off((PyObject *)g_CtrlType, "_reservation");
    off_c_meta = slot_off((PyObject *)g_CtrlType, "_meta");
    off_c_inflight = slot_off((PyObject *)g_CtrlType, "_inflight");
    off_c_hub = slot_off((PyObject *)g_CtrlType, "hub");
    off_c_sim = slot_off((PyObject *)g_CtrlType, "sim");
    off_c_node = slot_off((PyObject *)g_CtrlType, "node");
    off_c_cpu = slot_off((PyObject *)g_CtrlType, "cpu_id");
    off_c_t_l1 = slot_off((PyObject *)g_CtrlType, "_t_l1");
    off_c_t_l2 = slot_off((PyObject *)g_CtrlType, "_t_l2");
    off_c_spinw = slot_off((PyObject *)g_CtrlType, "spin_wakeups");
    off_sc_sets = slot_off((PyObject *)g_CacheType, "_sets");
    off_sc_nsets = slot_off((PyObject *)g_CacheType, "n_sets");
    off_sc_lb = slot_off((PyObject *)g_CacheType, "line_bytes");
    off_sc_wu = slot_off((PyObject *)g_CacheType, "word_updates");
    off_sc_stamp = slot_off((PyObject *)g_CacheType, "_stamp");
    off_sc_hits = slot_off((PyObject *)g_CacheType, "hits");
    off_sc_misses = slot_off((PyObject *)g_CacheType, "misses");
    off_sc_inval = slot_off((PyObject *)g_CacheType, "invalidations");
    off_cl_state = slot_off((PyObject *)g_LineType, "state");
    off_cl_words = slot_off((PyObject *)g_LineType, "words");
    off_cl_lastuse = slot_off((PyObject *)g_LineType, "last_use");
    off_lm_version = slot_off((PyObject *)g_LineMetaType, "version");
    off_lm_gate = slot_off((PyObject *)g_LineMetaType, "gate");
    off_lm_gatewait = slot_off((PyObject *)g_LineMetaType, "gate_wait");
    off_r_acquire = slot_off((PyObject *)g_ResourceType, "_acquire");
    off_ew_hub = slot_off((PyObject *)g_WaveType, "hub");
    off_ew_sim = slot_off((PyObject *)g_WaveType, "sim");
    off_ew_res = slot_off((PyObject *)g_WaveType, "res");
    off_ew_msgs = slot_off((PyObject *)g_WaveType, "messages");
    off_ew_occ = slot_off((PyObject *)g_WaveType, "occ");
    off_ew_index = slot_off((PyObject *)g_WaveType, "index");
    off_ew_done = slot_off((PyObject *)g_WaveType, "done");
    off_ew_rn = slot_off((PyObject *)g_WaveType, "_rn");
    off_ew_expiry = slot_off((PyObject *)g_WaveType, "_expiry");
    off_r_busy_cycles = slot_off((PyObject *)g_ResourceType,
                                 "busy_cycles");
    off_he_dram = slot_off((PyObject *)g_HomeType, "dram");
    off_he_backing = slot_off((PyObject *)g_HomeType, "backing");
    off_he_dir = slot_off((PyObject *)g_HomeType, "directory");
    off_he_sim = slot_off((PyObject *)g_HomeType, "sim");
    off_he_hub = slot_off((PyObject *)g_HomeType, "hub");
    off_he_node = slot_off((PyObject *)g_HomeType, "node");
    off_he_config = slot_off((PyObject *)g_HomeType, "config");
    off_he_gets = slot_off((PyObject *)g_HomeType, "get_s_served");
    off_he_tdir = slot_off((PyObject *)g_HomeType, "_t_dir");
    off_he_name_rf = slot_off((PyObject *)g_HomeType, "_name_readfill");
    off_de_line = slot_off((PyObject *)g_DirEntType, "line_addr");
    off_de_state = slot_off((PyObject *)g_DirEntType, "state");
    off_de_mask = slot_off((PyObject *)g_DirEntType, "sharer_mask");
    off_de_owner = slot_off((PyObject *)g_DirEntType, "owner");
    off_de_busy = slot_off((PyObject *)g_DirEntType, "busy");
    off_de_version = slot_off((PyObject *)g_DirEntType, "version");
    off_dr_chan = slot_off((PyObject *)g_DramType, "_channel");
    off_dr_lineacc = slot_off((PyObject *)g_DramType, "line_accesses");
    off_dr_t_occ = slot_off((PyObject *)g_DramType, "_t_line_occ");
    off_dr_t_res = slot_off((PyObject *)g_DramType, "_t_line_res");
    off_dr_resid = slot_off((PyObject *)g_DramType, "_line_residual");
    const Py_ssize_t offs[] = {
        off_m_kind, off_m_src, off_m_dst, off_m_addr, off_m_value,
        off_m_payload, off_m_reply_to, off_m_requester, off_m_dst_cpu,
        off_m_retransmit, off_m_size, off_m_id, off_h_routes,
        off_h_controllers, off_h_net, off_h_egress, off_h_t_update,
        off_h_t_ctrl, off_h_t_line, off_c_l1, off_c_l2, off_c_resv,
        off_c_meta, off_c_inflight, off_c_hub, off_c_sim, off_c_node,
        off_c_cpu, off_c_t_l1, off_c_t_l2, off_c_spinw, off_sc_sets,
        off_sc_nsets, off_sc_lb, off_sc_wu, off_sc_stamp, off_sc_hits,
        off_sc_misses, off_sc_inval, off_cl_state, off_cl_words,
        off_cl_lastuse, off_lm_version, off_lm_gate, off_lm_gatewait,
        off_ew_hub, off_ew_sim, off_ew_res, off_ew_msgs, off_ew_occ,
        off_ew_index, off_ew_done, off_ew_rn, off_ew_expiry,
        off_r_busy_cycles, off_r_acquire,
        off_he_dram, off_he_backing, off_he_dir, off_he_sim, off_he_hub,
        off_he_node, off_he_config, off_he_gets, off_he_tdir,
        off_he_name_rf, off_de_line, off_de_state, off_de_mask,
        off_de_owner, off_de_busy, off_de_version, off_dr_chan,
        off_dr_lineacc, off_dr_t_occ, off_dr_t_res, off_dr_resid,
    };
    int ok = g_fast;
    for (size_t i = 0; i < sizeof(offs) / sizeof(offs[0]); i++)
        if (offs[i] < 0)
            ok = 0;
    g_model_fast = ok;
    return PyBool_FromLong(g_model_fast);
}

/* ------------------------------------------------------------------ */
/* module                                                              */
/* ------------------------------------------------------------------ */

static PyMethodDef accel_functions[] = {
    {"arm_model", (PyCFunction)mod_arm_model, METH_O,
     "Bind the model layer's types and resolve their slot offsets; "
     "returns whether the compiled model paths are armed."},
    {"make_sender", (PyCFunction)mod_make_sender, METH_O,
     "Compiled Network.send bound to one network instance."},
    {"make_deliver", (PyCFunction)mod_make_deliver, METH_O,
     "Compiled Network._deliver bound to one network instance."},
    {"wave_granted", (PyCFunction)mod_wave_granted, METH_O,
     "Compiled _EgressWave._granted (egress grant re-arm)."},
    {"wave_expire", (PyCFunction)mod_wave_expire, METH_O,
     "Compiled _EgressWave._expire (one wave packet per call)."},
    {"build_wave", (PyCFunction)mod_build_wave, METH_FASTCALL,
     "Bulk-construct a wave's Message list from (cpu, node) pairs."},
    {"egress_send", (PyCFunction)mod_egress_send, METH_FASTCALL,
     "Compiled Hub.egress_send coroutine (acquire/occupy/release/send)."},
    {"ctrl_load", (PyCFunction)mod_ctrl_load, METH_FASTCALL,
     "Compiled CacheController.load coroutine (L1/L2 hit levels in C)."},
    {"ctrl_spin_until", (PyCFunction)mod_ctrl_spin_until, METH_FASTCALL,
     "Compiled CacheController.spin_until coroutine (versioned spin)."},
    {"ctrl_do_invalidate", (PyCFunction)mod_ctrl_do_invalidate,
     METH_FASTCALL,
     "Compiled CacheController._do_invalidate coroutine (inv + ack)."},
    {"serve_get_s", (PyCFunction)mod_serve_get_s, METH_FASTCALL,
     "Compiled HomeEngine._serve_get_s coroutine (clean-read path)."},
    {"finish_clean_read", (PyCFunction)mod_finish_clean_read,
     METH_FASTCALL,
     "Compiled HomeEngine._finish_clean_read coroutine (DRAM + reply)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef accel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim.backends._accel_core",
    .m_doc = "Compiled accel event core (see repro.sim.backends).",
    .m_size = -1,
    .m_methods = accel_functions,
};

static int
intern_all(void)
{
#define INTERN(var, text)                          \
    do {                                           \
        var = PyUnicode_InternFromString(text);    \
        if (var == NULL)                           \
            return -1;                             \
    } while (0)
    INTERN(s_done, "done");
    INTERN(s_gen, "gen");
    INTERN(s_stack, "stack");
    INTERN(s_rn, "_rn");
    INTERN(s_finish, "_finish");
    INTERN(s_fail, "_fail");
    INTERN(s_arm, "_arm");
    INTERN(s_throw, "throw");
    INTERN(s_name, "name");
    INTERN(s_result, "result");
    INTERN(s_delay, "delay");
    INTERN(s_qualname, "__qualname__");
    INTERN(s_value, "value");
    INTERN(s_append, "append");
    INTERN(s_popleft, "popleft");
    INTERN(s_dunder_name, "__name__");
    INTERN(s_sim, "sim");
    INTERN(s_send, "send");
    INTERN(s_stats, "stats");
    INTERN(s_config, "config");
    INTERN(s_shard, "shard");
    INTERN(s_handlers, "_handlers");
    INTERN(s_send_hooks, "_send_hooks");
    INTERN(s_delay_injector, "delay_injector");
    INTERN(s_reorder_injector, "reorder_injector");
    INTERN(s_inj_seq, "_inj_seq");
    INTERN(s_route_cache, "_route_cache");
    INTERN(s_deliver, "_deliver");
    INTERN(s_messages, "messages");
    INTERN(s_bytes, "bytes");
    INTERN(s_hop_bytes, "hop_bytes");
    INTERN(s_local_messages, "local_messages");
    INTERN(s_retransmits, "retransmits");
    INTERN(s_trace_enabled, "trace_enabled");
    INTERN(s_router_contention, "model_router_contention");
    INTERN(s_link_contention, "model_link_contention");
    INTERN(s_is_reply, "is_reply");
    INTERN(s_packet_bytes, "packet_bytes");
    INTERN(s_try_fire, "try_fire");
    INTERN(s_fire, "fire");
    INTERN(s_pulse, "pulse");
    INTERN(s_line_changed, "_line_changed");
    INTERN(s_updates, "updates");
    INTERN(s_apply_word_update, "apply_word_update");
    INTERN(s_net, "net");
    INTERN(s_carries_line, "carries_line");
    INTERN(s_load_miss, "_load_miss");
    INTERN(s_fill_l1, "_fill_l1");
    INTERN(s_exclusive, "exclusive");
    INTERN(s_poisoned, "poisoned");
    INTERN(s_entry, "entry");
    INTERN(s_read_line, "read_line");
    INTERN(s_spawn, "spawn");
    INTERN(s_line_bytes, "line_bytes");
    INTERN(s_get_s_owned, "_get_s_owned");
#undef INTERN
    return 0;
}

/* fetch ``mod.name`` and require it to be a type */
static PyTypeObject *
get_type(PyObject *mod, const char *name)
{
    PyObject *obj = PyObject_GetAttrString(mod, name);
    if (obj == NULL)
        return NULL;
    if (!PyType_Check(obj)) {
        Py_DECREF(obj);
        PyErr_Format(PyExc_TypeError, "%s is not a type", name);
        return NULL;
    }
    return (PyTypeObject *)obj;
}

/* Resolve every slot offset the specialized paths rely on.  Returns 1
 * when all of them are plain T_OBJECT_EX member descriptors (enabling
 * ``g_fast``), 0 when any is missing — never an error: a refactored
 * Python class simply disables the fast paths. */
static int
resolve_offsets(void)
{
    PyObject *proc_cls = (PyObject *)g_ProcessType;
    off_p_gen = slot_off(proc_cls, "gen");
    off_p_stack = slot_off(proc_cls, "stack");
    off_p_name = slot_off(proc_cls, "name");
    off_p_sim = slot_off(proc_cls, "sim");
    off_p_done = slot_off(proc_cls, "done");
    off_p_result = slot_off(proc_cls, "result");
    off_p_error = slot_off(proc_cls, "error");
    off_p_waiters = slot_off(proc_cls, "_waiters");
    off_p_rn = slot_off(proc_cls, "_rn");
    off_j_target = slot_off((PyObject *)g_JoinType, "target");
    off_w_signal = slot_off((PyObject *)g_WaitType, "signal");
    off_gw_gate = slot_off((PyObject *)g_GateWaitType, "gate");
    off_a_resource = slot_off((PyObject *)g_AcquireType, "resource");
    off_qg_queue = slot_off((PyObject *)g_QueueGetType, "queue");
    off_s_waiters = slot_off((PyObject *)g_SignalType, "_waiters");
    off_s_fired = slot_off((PyObject *)g_SignalType, "fired");
    off_s_value = slot_off((PyObject *)g_SignalType, "value");
    off_g_waiters = slot_off((PyObject *)g_GateType, "_waiters");
    off_g_open = slot_off((PyObject *)g_GateType, "open");
    off_g_value = slot_off((PyObject *)g_GateType, "value");
    off_r_busy = slot_off((PyObject *)g_ResourceType, "_busy");
    off_r_queue = slot_off((PyObject *)g_ResourceType, "_queue");
    off_r_grants = slot_off((PyObject *)g_ResourceType, "grants");
    off_r_acquired = slot_off((PyObject *)g_ResourceType, "_acquired_at");
    off_r_sim = slot_off((PyObject *)g_ResourceType, "_sim");
    off_fq_items = slot_off((PyObject *)g_FifoQueueType, "_items");
    off_fq_getters = slot_off((PyObject *)g_FifoQueueType, "_getters");
    const Py_ssize_t offs[] = {
        off_p_gen, off_p_stack, off_p_name, off_p_sim, off_p_done,
        off_p_result, off_p_error, off_p_waiters, off_p_rn,
        off_j_target, off_w_signal, off_gw_gate, off_a_resource,
        off_qg_queue, off_s_waiters, off_s_fired, off_s_value,
        off_g_waiters, off_g_open, off_g_value, off_r_busy, off_r_queue,
        off_r_grants, off_r_acquired, off_r_sim, off_fq_items,
        off_fq_getters,
    };
    for (size_t i = 0; i < sizeof(offs) / sizeof(offs[0]); i++)
        if (offs[i] < 0)
            return 0;
    return 1;
}

PyMODINIT_FUNC
PyInit__accel_core(void)
{
    if (intern_all() < 0)
        return NULL;
    g_empty_str = PyUnicode_FromString("");
    if (g_empty_str == NULL)
        return NULL;
    PyObject *kernel = PyImport_ImportModule("repro.sim.kernel");
    if (kernel == NULL)
        return NULL;
    g_SimulationError = PyObject_GetAttrString(kernel, "SimulationError");
    Py_DECREF(kernel);
    if (g_SimulationError == NULL)
        return NULL;
    g_one = PyLong_FromLong(1);
    if (g_one == NULL)
        return NULL;
    PyObject *process = PyImport_ImportModule("repro.sim.process");
    if (process == NULL)
        return NULL;
    g_Process = PyObject_GetAttrString(process, "Process");
    if (g_Process == NULL) {
        Py_DECREF(process);
        return NULL;
    }
    g_ProcessType = get_type(process, "Process");
    g_JoinType = get_type(process, "JoinCmd");
    Py_DECREF(process);
    if (g_ProcessType == NULL || g_JoinType == NULL)
        return NULL;
    PyObject *primitives = PyImport_ImportModule("repro.sim.primitives");
    if (primitives == NULL)
        return NULL;
    g_TimeoutType = get_type(primitives, "Timeout");
    g_WaitType = get_type(primitives, "Wait");
    g_GateWaitType = get_type(primitives, "GateWait");
    g_AcquireType = get_type(primitives, "Acquire");
    g_QueueGetType = get_type(primitives, "QueueGet");
    g_SignalType = get_type(primitives, "Signal");
    g_GateType = get_type(primitives, "Gate");
    g_ResourceType = get_type(primitives, "Resource");
    g_FifoQueueType = get_type(primitives, "FifoQueue");
    Py_DECREF(primitives);
    if (g_TimeoutType == NULL || g_WaitType == NULL ||
            g_GateWaitType == NULL || g_AcquireType == NULL ||
            g_QueueGetType == NULL || g_SignalType == NULL ||
            g_GateType == NULL || g_ResourceType == NULL ||
            g_FifoQueueType == NULL)
        return NULL;
    g_fast = resolve_offsets();

    if (PyType_Ready(&Ring_Type) < 0 || PyType_Ready(&Sim_Type) < 0 ||
            PyType_Ready(&Coro_Type) < 0)
        return NULL;
    PyObject *mod = PyModule_Create(&accel_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddObjectRef(mod, "AccelSimulator",
                              (PyObject *)&Sim_Type) < 0 ||
            PyModule_AddObjectRef(mod, "ModelCoro",
                                  (PyObject *)&Coro_Type) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
