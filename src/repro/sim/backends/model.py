"""Model-layer port of the accel backend: compiled fabric and wave paths.

PR 8 compiled the *kernel* (event queue, dispatch ring, resume
trampoline) and hit its Amdahl wall: with the kernel at ~10% of wall
time, the remaining cycles live in the per-message model hot path —
``Network.send``/``_deliver``, the word-update handler chain, and the
egress wave expiry that serializes every invalidation/update fan-out.
This module extends the parity-gated backend seam across that boundary.

Shape of the port
-----------------
The compiled core (:mod:`repro.sim.backends._accel_core`) cannot import
the model layer — the model imports *it* — so the binding is inverted:
on the first accel :class:`~repro.core.machine.Machine` construction,
:func:`model_classes` calls the core's ``arm_model`` with the model
types and their ``__slots__`` layouts.  The core resolves member-descriptor
offsets once (the same technique the kernel port uses for ``Process``)
and reports whether the compiled fast paths are usable.  A refactored
slot layout simply reports unarmed and every path stays pure Python —
behaviour, if not speed, is preserved, mirroring the kernel fallback
contract.

When armed, :func:`model_classes` returns thin subclasses:

``AccelNetwork``
    Plants compiled ``send``/``_deliver`` bound callables as instance
    attributes.  Each falls back to the Python coding **before mutating
    anything** whenever a precondition fails: contention modelling on,
    injectors installed, send hooks subscribed, stats tracing, a cold
    route cache, a sharded run.  Instance-attribute monkeypatching
    (``repro.check.fuzz`` wraps ``net.send``) still composes — the
    wrapper shadows the compiled attribute and receives it as the
    original to forward to.

``AccelHub`` / ``AccelEgressWave``
    The wave's per-packet ``_granted``/``_expire`` callbacks become C
    functions, so an N-way invalidation or word-update wave costs N C
    callbacks with no Python frames — batched release waves.  Grant
    cycles, FIFO fairness with queued processes, resource accounting,
    and the ``done`` signal's fire cycle are replicated exactly; the
    egress ``send`` inside the expiry is fetched generically per packet
    so fault-injection wrappers stay honored.

Every fast path preserves the reference event stream bit-for-bit: same
events, same counts, same order (golden parity enforces this across
fresh/warm/sharded/metered/qlock fingerprints).  The win is constant
factor only — each event gets cheaper, no event disappears.
"""

from __future__ import annotations

import logging
import os
from typing import Optional, Tuple, Type

__all__ = ["model_classes", "model_core", "model_implementation"]

logger = logging.getLogger(__name__)

#: None = not probed yet; otherwise the armed core module or False
_CORE = None
_CLASSES: Optional[Tuple[type, type]] = None


def model_core():
    """The compiled core with armed model paths, or ``None``.

    Lazily arms on first call.  Returns ``None`` when the accel backend
    is running on the pure-Python fallback, when the compiled core's
    model paths could not be armed (slot-layout drift), or when
    ``$REPRO_ACCEL_DISABLE_COMPILED`` disables compiled code entirely.
    """
    global _CORE
    if _CORE is None:
        _CORE = _try_arm() or False
    return _CORE or None


def model_implementation() -> str:
    """Which model-path implementation the accel backend would use:
    ``"compiled"`` or ``"python"``."""
    return "compiled" if model_core() is not None else "python"


def _try_arm():
    from repro.sim.backends import (ENV_REQUIRE_COMPILED, BackendError,
                                    accel_implementation)

    if accel_implementation() != "compiled":
        return None
    from repro.sim.backends import _accel_core as core

    from repro.cache.cache import SetAssociativeCache
    from repro.cache.line import CacheLine
    from repro.cache.state import LineState
    from repro.coherence.client import CacheController, LineMeta
    from repro.coherence.directory import DirectoryEntry, DirState
    from repro.coherence.protocol import HomeEngine
    from repro.core.machine import Hub, _EgressWave
    from repro.mem.address import LINE_BYTES, WORD_BYTES
    from repro.mem.dram import Dram
    from repro.network.fabric import Network
    from repro.network.message import Message, MessageKind, _msg_ids
    from repro.network.stats import TrafficStats

    armed = core.arm_model({
        "Message": Message,
        "Hub": Hub,
        "CacheController": CacheController,
        "Cache": SetAssociativeCache,
        "CacheLine": CacheLine,
        "LineMeta": LineMeta,
        "EgressWave": _EgressWave,
        "TrafficStats": TrafficStats,
        "WORD_UPDATE": MessageKind.WORD_UPDATE,
        "INVALID": LineState.INVALID,
        "msg_ids": _msg_ids,
        "net_send": Network.send,
        "net_deliver": Network._deliver,
        "hub_receive": Hub.receive,
        "wave_granted": _EgressWave._granted,
        "wave_expire": _EgressWave._expire,
        "hub_egress_send": Hub.egress_send,
        "ctrl_load": CacheController.load,
        "ctrl_spin_until": CacheController.spin_until,
        "ctrl_do_invalidate": CacheController._do_invalidate,
        "INV_ACK": MessageKind.INV_ACK,
        "HomeEngine": HomeEngine,
        "DirectoryEntry": DirectoryEntry,
        "Dram": Dram,
        "serve_get_s": HomeEngine._serve_get_s,
        "finish_clean_read": HomeEngine._finish_clean_read,
        "DATA_S": MessageKind.DATA_S,
        "DIR_EXCLUSIVE": DirState.EXCLUSIVE,
        "DIR_SHARED": DirState.SHARED,
        "LINE_BYTES": LINE_BYTES,
        "WORD_BYTES": WORD_BYTES,
    })
    if not armed:
        msg = ("accel model port disabled: slot layout mismatch between "
               "the compiled core and the model classes; using "
               "pure-Python model paths")
        if os.environ.get(ENV_REQUIRE_COMPILED) not in (None, "", "0"):
            raise BackendError(msg)
        logger.warning(msg)
        return None
    return core


def _build_classes(core) -> Tuple[type, type]:
    """The accel model subclasses (built once, cached).

    All three add ``__slots__ = ()`` so their member-descriptor offsets
    are byte-identical to the base classes the core was armed with.
    """
    from repro.coherence.client import CacheController
    from repro.coherence.protocol import HomeEngine
    from repro.core.machine import Hub, _EgressWave
    from repro.network.fabric import Network

    class AccelCacheController(CacheController):
        __slots__ = ()

        # Each override returns a compiled state machine speaking the
        # generator protocol; the core falls back to the base Python
        # coroutines (passed to arm_model) whenever a precondition
        # fails, so behaviour — and the event stream — is identical.
        def load(self, addr):
            return core.ctrl_load(self, addr)

        def spin_until(self, addr, predicate):
            return core.ctrl_spin_until(self, addr, predicate)

        def _do_invalidate(self, msg):
            return core.ctrl_do_invalidate(self, msg)

    class AccelHomeEngine(HomeEngine):
        __slots__ = ()

        # The clean-read GET_S path (the reload half of every barrier /
        # lock wake-up storm) runs as a compiled state machine; the
        # 3-hop owned tail delegates back to _get_s_owned in Python.
        def _serve_get_s(self, msg):
            return core.serve_get_s(self, msg)

        def _finish_clean_read(self, msg, words):
            return core.finish_clean_read(self, msg, words)

    class AccelEgressWave(_EgressWave):
        __slots__ = ()

        def __init__(self, hub, messages, occ, done):
            super().__init__(hub, messages, occ, done)
            # one C callback per packet instead of a Python frame
            self._rn = (core.wave_granted, (self,))
            self._expiry = (core.wave_expire, (self,))

    class AccelHub(Hub):
        __slots__ = ()
        _wave_cls = AccelEgressWave
        _controller_cls = AccelCacheController
        _home_cls = AccelHomeEngine

        def egress_send(self, msg):
            return core.egress_send(self, msg)

    class AccelNetwork(Network):
        def __init__(self, sim, n_nodes, config=None):
            super().__init__(sim, n_nodes, config)
            self.send = core.make_sender(self)
            self._deliver = core.make_deliver(self)

    return AccelNetwork, AccelHub


def model_classes(backend: Optional[str]) -> Tuple[type, type]:
    """``(network_cls, hub_cls)`` for one machine.

    ``backend`` is the machine's configured kernel backend name
    (``None`` applies the registry's selection order, honoring
    ``$REPRO_KERNEL_BACKEND``).  Only the ``accel`` backend with an
    armed compiled core gets the accel classes; everything else —
    including every ``reference`` run — gets the plain model classes.
    """
    global _CLASSES
    from repro.core.machine import Hub
    from repro.network.fabric import Network
    from repro.sim.backends import resolve_backend_name

    if resolve_backend_name(backend) == "accel":
        core = model_core()
        if core is not None:
            if _CLASSES is None:
                _CLASSES = _build_classes(core)
            return _CLASSES
    return Network, Hub
