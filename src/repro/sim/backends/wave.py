"""Batched wave expansion: vectorized sharer-bitmask fan-out.

The home engine's INVALIDATE / WORD_UPDATE waves expand a directory
presence bitmask into ``(cpu, node)`` destination pairs before building
the per-target messages.  At 32 CPUs that expansion is noise; on the
512/1024-CPU broadcast-heavy cells a P-way wave peels a thousand bits
and calls ``node_of_cpu`` a thousand times per barrier episode, all in
the interpreter.

This module provides the expansion in two interchangeable forms:

``expand_wave_py``
    The reference coding — lowest-set-bit peeling plus a floor divide
    per sharer, identical to ``directory.iter_sharers`` order.

``expand_wave_np``
    A numpy batch: the mask's little-endian bytes are unpacked to a bit
    array, ``flatnonzero`` yields the ascending CPU ids, and the node
    ids fall out of one vectorized floor divide.  Small fan-outs (below
    ``VECTOR_MIN_FANOUT``) skip the array overhead and use the peel
    loop.

Both return the **same list in the same ascending-CPU order**, so the
message stream — and therefore the golden parity fingerprints — is
byte-identical regardless of which one runs.

:func:`wave_expander` picks per machine: the numpy path is gated on the
``accel`` backend *and* ``n_processors >= VECTOR_MIN_CPUS`` (and numpy
being importable), keeping ``reference`` an honest pure-Python baseline.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

try:  # numpy is a hard dependency of repro, but degrade gracefully
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = [
    "VECTOR_MIN_CPUS",
    "VECTOR_MIN_FANOUT",
    "build_wave_py",
    "expand_wave_np",
    "expand_wave_py",
    "wave_builder",
    "wave_expander",
]

#: machine size at which the accel backend switches to the numpy path
VECTOR_MIN_CPUS = 512

#: below this popcount the peel loop beats numpy's fixed overhead
VECTOR_MIN_FANOUT = 16

WaveExpander = Callable[[int, int], List[Tuple[int, int]]]


def expand_wave_py(mask: int, cpus_per_node: int) -> List[Tuple[int, int]]:
    """``(cpu, node)`` pairs for every set bit, ascending CPU order."""
    out = []
    while mask:
        low = mask & -mask
        cpu = low.bit_length() - 1
        out.append((cpu, cpu // cpus_per_node))
        mask ^= low
    return out


def expand_wave_np(mask: int, cpus_per_node: int) -> List[Tuple[int, int]]:
    """Vectorized :func:`expand_wave_py`; identical output and order."""
    if mask.bit_count() < VECTOR_MIN_FANOUT:
        return expand_wave_py(mask, cpus_per_node)
    nbytes = (mask.bit_length() + 7) >> 3
    bits = _np.unpackbits(
        _np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=_np.uint8),
        bitorder="little")
    cpus = _np.flatnonzero(bits)
    nodes = cpus // cpus_per_node
    return list(zip(cpus.tolist(), nodes.tolist()))


def build_wave_py(kind, src_node, addr, value, payload, pairs):
    """The reference wave construction: one :class:`Message` per
    ``(cpu, node)`` pair, sharing the kind/addr/value/payload of the
    whole wave.  Message ids are drawn from the global counter in pair
    order, exactly like the inline list comprehensions this replaces."""
    from repro.network.message import Message

    return [Message(kind=kind, src_node=src_node, dst_node=node, addr=addr,
                    value=value, payload=payload, dst_cpu=cpu)
            for cpu, node in pairs]


def wave_builder(backend: Optional[str]):
    """Select the wave *construction* for one machine.

    The home engine builds an N-target wave's message list in one call;
    on the accel backend with an armed compiled core the whole batch is
    allocated in C (``_accel_core.build_wave`` — same slots, same id
    counter, same order), turning a 1024-way invalidation wave's
    message construction into a single C loop.  Everything else gets
    the pure-Python builder.
    """
    from repro.sim.backends import resolve_backend_name

    if resolve_backend_name(backend) == "accel":
        from repro.sim.backends.model import model_core

        core = model_core()
        if core is not None:
            return core.build_wave
    return build_wave_py


def wave_expander(backend: Optional[str], n_processors: int) -> WaveExpander:
    """Select the wave expansion for one machine.

    ``backend`` is the machine's configured kernel backend name (``None``
    applies the registry's selection order, so ``$REPRO_KERNEL_BACKEND``
    is honored).  The numpy batch is used only for the ``accel`` backend
    on machines of at least :data:`VECTOR_MIN_CPUS` CPUs; everything
    else — including every ``reference`` run — gets the peel loop.
    """
    from repro.sim.backends import resolve_backend_name

    name = resolve_backend_name(backend)
    if name == "accel" and n_processors >= VECTOR_MIN_CPUS and _np is not None:
        return expand_wave_np
    return expand_wave_py
