"""Tightened pure-Python ``accel`` kernel (fallback for the C core).

Same contract, same byte-identical results as
:class:`repro.sim.kernel.Simulator` — this class *is* a Simulator
subclass; only the main loop differs:

* ``sim._resume`` is bound **once** per simulator (a stable object
  identity instead of a fresh bound method per attribute access), so the
  dispatch loop can pointer-compare each event's callable against it and
  run the resume trampoline *inline* — no Python call frame per process
  resumption, which is the overwhelmingly common event.
* :class:`~repro.sim.primitives.Timeout` arming is specialized inside
  the inlined trampoline (one type check replaces a ``_arm`` call), and
  future pushes are inlined into the loop.
* The traced path delegates to the reference loop, so tracing semantics
  stay defined in exactly one place.

The compiled backend (:mod:`repro.sim.backends._accel_core`) applies the
same restructuring in C; this module is the automatic fallback when that
extension is not built, and the executable specification for it.
"""

from __future__ import annotations

import heapq
from types import GeneratorType
from typing import Optional

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.primitives import Timeout


class AccelSimulator(Simulator):
    """Pure-Python accel backend: inlined-trampoline dispatch loop."""

    def __init__(self, trace: bool = False) -> None:
        super().__init__(trace=trace)
        # Bind the resume callable once.  Every ``sim._resume`` read now
        # returns this same object, so ``proc._rn`` tuples and explicit
        # ``(sim._resume, (proc, value))`` events all share one identity
        # the dispatch loop can recognize by pointer comparison.
        self._resume = self._resume

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Dispatch events until the queue empties (or a bound is hit).

        Identical semantics to :meth:`Simulator.run`; see there for the
        parameter contract.
        """
        if self.trace:
            # Tracing is a debug path; keep it on the reference loop.
            return Simulator.run(self, until=until, max_events=max_events)
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        ring = self._ring
        buckets = self._buckets
        times = self._times
        bucket_pool = self._bucket_pool
        phase_map = self._phase
        heappop = heapq.heappop
        resume = self._resume
        active = self.active_processes
        popleft = ring.popleft
        append = ring.append
        extend = ring.extend
        bucket_get = self._buckets.get
        heappush = heapq.heappush
        timeout_t = Timeout
        gen_t = GeneratorType
        max_ev = -1 if max_events is None else max_events
        dispatched = 0
        base_dispatched = self.events_dispatched
        now = self.now
        try:
            while True:
                while ring:
                    if dispatched == max_ev:
                        raise SimulationError(
                            f"exceeded max_events={max_events}")
                    fn, args = popleft()
                    if fn is resume:
                        # ---- inlined resume trampoline ----
                        proc = args[0]
                        if not proc.done:
                            value = args[1]
                            exc = None
                            gen = proc.gen
                            stack = proc.stack
                            while True:
                                try:
                                    if exc is not None:
                                        err_in, exc = exc, None
                                        cmd = gen.throw(err_in)
                                    else:
                                        cmd = gen.send(value)
                                except StopIteration as stop:
                                    if stack:
                                        proc.gen = gen = stack.pop()
                                        value = stop.value
                                        continue
                                    proc._finish(stop.value)
                                    active.discard(proc)
                                    break
                                except BaseException as err:
                                    if stack:
                                        proc.gen = gen = stack.pop()
                                        exc = err
                                        continue
                                    proc._fail(err)
                                    active.discard(proc)
                                    raise
                                tcmd = type(cmd)
                                if tcmd is timeout_t:
                                    # ---- inlined Timeout._arm ----
                                    d = cmd.delay
                                    if d > 0:
                                        when = now + d
                                        bucket = bucket_get(when)
                                        if bucket is None:
                                            bucket = (bucket_pool.pop()
                                                      if bucket_pool else [])
                                            buckets[when] = bucket
                                            heappush(times, when)
                                        bucket.append(proc._rn)
                                    elif d == 0:
                                        append(proc._rn)
                                    else:
                                        self.schedule(d, resume, proc, None)
                                    break
                                if tcmd is gen_t:
                                    stack.append(gen)
                                    proc.gen = gen = cmd
                                    value = None
                                    continue
                                try:
                                    cmd._arm(self, proc)
                                except AttributeError:
                                    raise SimulationError(
                                        f"process {proc.name!r} yielded "
                                        f"non-primitive {cmd!r}; yield "
                                        "Timeout/Wait/Acquire/... or use "
                                        "'yield from' for sub-coroutines"
                                    ) from None
                                break
                    else:
                        fn(*args)
                    dispatched += 1
                if not times:
                    break
                # events remain: the bound is checked before looking at
                # ``until`` so a capped run with work pending always raises
                if dispatched == max_ev:
                    raise SimulationError(f"exceeded max_events={max_events}")
                when = times[0]
                if until is not None and when > until:
                    self.now = until
                    break
                heappop(times)
                self.now = now = when
                phase = phase_map.pop(when, None)
                if phase is not None:
                    # delivery phase: canonical (src, seq) arrival order
                    if len(phase) > 1:
                        phase.sort()
                    extend(entry[1] for entry in phase)
                bucket = buckets.pop(when)
                extend(bucket)
                bucket.clear()
                bucket_pool.append(bucket)
        finally:
            self._running = False
            self.events_dispatched = base_dispatched + dispatched
        return self.now
