"""Kernel-backend registry: pluggable event-core implementations.

The simulator's inner loop — the two-tier event queue, same-cycle
dispatch ring, delivery-phase ordering, and resume trampoline — is a
stable contract (see :mod:`repro.sim.kernel`) with golden parity
coverage at 32/512 CPUs.  This package lets that contract be served by
interchangeable *backends*:

``reference``
    Today's pure-Python :class:`repro.sim.kernel.Simulator`, unchanged.
    The goldens are captured against it and it remains the headline
    implementation for BENCH trajectory history.

``accel``
    An optimized core.  When the compiled extension
    (``repro.sim.backends._accel_core``, a C event core built by
    ``pip install -e .[accel]`` or ``python setup.py build_ext
    --inplace``) is importable it is used; otherwise the registry falls
    back — with a logged warning — to the tightened pure-Python
    implementation in :mod:`repro.sim.backends.accel_py`.  Both produce
    byte-identical results to ``reference``.

Selection order (first match wins):

1. an explicit backend name (``SystemConfig.kernel_backend``,
   ``RunSpec(backend=...)``, CLI ``--backend``);
2. the ``REPRO_KERNEL_BACKEND`` environment variable;
3. the default, ``reference``.

Because every backend must reproduce the reference results
byte-identically, the backend name is **never** part of a result cache
key (see :meth:`repro.runner.spec.RunSpec.canonical`).

Environment knobs
-----------------
``REPRO_KERNEL_BACKEND``
    Default backend name when none is given explicitly.
``REPRO_ACCEL_DISABLE_COMPILED=1``
    Skip the compiled core even if importable (exercises the fallback).
``REPRO_ACCEL_REQUIRE_COMPILED=1``
    Refuse to fall back: raise if the compiled core cannot be imported.
    Used by the ``kernel-backend`` CI job so a broken build fails loudly
    instead of silently benchmarking the fallback.
"""

from __future__ import annotations

import logging
import os
from typing import Callable, Dict, Optional

from repro.sim.kernel import SimulationError, Simulator

__all__ = [
    "DEFAULT_BACKEND",
    "BackendError",
    "accel_implementation",
    "available_backends",
    "create_simulator",
    "register_backend",
    "resolve_backend_name",
]

logger = logging.getLogger(__name__)

DEFAULT_BACKEND = "reference"

#: environment variable consulted when no explicit backend is given
ENV_BACKEND = "REPRO_KERNEL_BACKEND"
ENV_DISABLE_COMPILED = "REPRO_ACCEL_DISABLE_COMPILED"
ENV_REQUIRE_COMPILED = "REPRO_ACCEL_REQUIRE_COMPILED"


class BackendError(SimulationError):
    """Raised for unknown backend names or unusable backend builds."""


_REGISTRY: Dict[str, Callable[..., Simulator]] = {}


def register_backend(name: str, factory: Callable[..., Simulator]) -> None:
    """Register ``factory(trace=...) -> Simulator`` under ``name``."""
    _REGISTRY[name] = factory


def available_backends() -> tuple:
    """Registered backend names, sorted (``reference`` always present)."""
    return tuple(sorted(_REGISTRY))


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Resolve a backend name: explicit arg > $REPRO_KERNEL_BACKEND > default.

    Raises :class:`BackendError` for names that are not registered, so a
    typo'd ``--backend`` or environment variable fails loudly instead of
    silently simulating on the wrong core.
    """
    if name is None:
        name = os.environ.get(ENV_BACKEND) or DEFAULT_BACKEND
    if name not in _REGISTRY:
        raise BackendError(
            f"unknown kernel backend {name!r}; "
            f"available: {', '.join(available_backends())}")
    return name


def create_simulator(name: Optional[str] = None, trace: bool = False) -> Simulator:
    """Instantiate the selected backend's simulator.

    ``name=None`` applies the selection order documented in the module
    docstring.  Every backend returns an object satisfying the full
    kernel contract of :class:`repro.sim.kernel.Simulator`.
    """
    return _REGISTRY[resolve_backend_name(name)](trace=trace)


# ----------------------------------------------------------------------
# accel: compiled core with logged pure-Python fallback
# ----------------------------------------------------------------------

#: ``None`` until first use, then "compiled" or "python"
_ACCEL_IMPL: Optional[str] = None
_ACCEL_FACTORY: Optional[Callable[..., Simulator]] = None


def _load_accel() -> Callable[..., Simulator]:
    """Import the compiled core, or fall back to accel_py (once, logged)."""
    global _ACCEL_IMPL, _ACCEL_FACTORY
    if _ACCEL_FACTORY is not None:
        return _ACCEL_FACTORY
    compiled_error: Optional[BaseException] = None
    if os.environ.get(ENV_DISABLE_COMPILED) not in (None, "", "0"):
        compiled_error = ImportError(
            f"compiled core disabled by ${ENV_DISABLE_COMPILED}")
    else:
        try:
            from repro.sim.backends import _accel_core
            _ACCEL_IMPL = "compiled"
            _ACCEL_FACTORY = _accel_core.AccelSimulator
            return _ACCEL_FACTORY
        except ImportError as err:
            compiled_error = err
    if os.environ.get(ENV_REQUIRE_COMPILED) not in (None, "", "0"):
        raise BackendError(
            "compiled accel core required by "
            f"${ENV_REQUIRE_COMPILED} but unavailable: {compiled_error}")
    logger.warning(
        "accel backend: compiled core unavailable (%s); "
        "falling back to the pure-Python accel implementation "
        "(build it with: pip install -e .[accel] or "
        "python setup.py build_ext --inplace)", compiled_error)
    from repro.sim.backends.accel_py import AccelSimulator
    _ACCEL_IMPL = "python"
    _ACCEL_FACTORY = AccelSimulator
    return _ACCEL_FACTORY


def _accel_factory(trace: bool = False) -> Simulator:
    return _load_accel()(trace=trace)


def accel_implementation() -> str:
    """Which ``accel`` implementation is active: "compiled" or "python".

    Forces resolution (importing the compiled core if present).
    """
    _load_accel()
    assert _ACCEL_IMPL is not None
    return _ACCEL_IMPL


register_backend("reference", Simulator)
register_backend("accel", _accel_factory)
