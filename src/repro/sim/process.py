"""Generator-backed simulation processes.

A :class:`Process` wraps a Python generator.  The generator yields waitable
primitives (:mod:`repro.sim.primitives`) and the kernel resumes it when the
primitive completes.  Sub-coroutines compose with plain ``yield from``, so
hardware models read like straight-line code:

.. code-block:: python

    def cpu_thread(mem):
        value = yield from mem.load(addr)        # nested coroutine
        yield Timeout(COMPUTE_CYCLES)            # primitive
        yield from mem.store(addr, value + 1)
        return value
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator
    from repro.sim.primitives import Wait


class Process:
    """A running coroutine inside the simulator.

    Not constructed directly — use :meth:`repro.sim.kernel.Simulator.spawn`.

    Attributes
    ----------
    done:
        True once the generator returned or raised.
    result:
        The generator's ``return`` value (None until :attr:`done`).
    error:
        The exception that killed the process, if any.
    gen:
        The generator the kernel currently resumes — the innermost frame
        when sub-coroutines are yielded directly (see :attr:`stack`).
    stack:
        Suspended caller generators, outermost first.  Populated when a
        coroutine yields a sub-generator instead of delegating with
        ``yield from``; the kernel's flattened trampoline drives only
        :attr:`gen` and unwinds through this stack on return/raise, so a
        resume costs one Python frame regardless of call depth.
    """

    __slots__ = ("gen", "stack", "name", "sim", "done", "result", "error",
                 "_waiters", "_rn")

    def __init__(self, gen: Generator, name: str, sim: "Simulator") -> None:
        self.gen = gen
        self.stack: list[Generator] = []
        self.name = name or getattr(gen, "__name__", "process")
        self.sim = sim
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._waiters: list[Process] = []
        # Interned "resume with None" event.  A process is suspended on at
        # most one primitive at a time, so the same tuple is never queued
        # twice concurrently; every None-valued wake-up (spawn, Timeout,
        # Acquire grant) reuses it instead of allocating two tuples.
        self._rn = (sim._resume, (self, None))

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        waiters = self._waiters
        if waiters:
            self._waiters = []
            ring = self.sim._ring
            resume = self.sim._resume
            for waiter in waiters:
                ring.append((resume, (waiter, result)))

    def _fail(self, error: BaseException) -> None:
        self.done = True
        self.error = error
        # Waiters are abandoned; the kernel re-raises the error at top level
        # so a failing process always surfaces loudly in tests.
        self._waiters = []

    def join(self) -> "JoinCmd":
        """Yieldable: block the caller until this process finishes.

        Resumes with the process result.  Joining an already-finished
        process resumes immediately (next zero-delay slot).
        """
        return JoinCmd(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"<Process {self.name} {state}>"


class JoinCmd:
    """Primitive implementing :meth:`Process.join`."""

    __slots__ = ("target",)

    def __init__(self, target: Process) -> None:
        self.target = target

    def _arm(self, sim: "Simulator", proc: Process) -> None:
        if self.target.done:
            sim._ring.append((sim._resume, (proc, self.target.result)))
        else:
            self.target._waiters.append(proc)
