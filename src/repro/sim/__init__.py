"""Discrete-event simulation kernel (substrate S1).

This subpackage provides the event-driven core that the whole simulator is
built on: a :class:`~repro.sim.kernel.Simulator` event loop, generator-based
:class:`~repro.sim.process.Process` coroutines, and the waitable primitives
(:class:`~repro.sim.primitives.Timeout`, :class:`~repro.sim.primitives.Signal`,
:class:`~repro.sim.primitives.Gate`, :class:`~repro.sim.primitives.Resource`,
:class:`~repro.sim.primitives.FifoQueue`).

The kernel is deliberately minimal and deterministic: events with equal
timestamps fire in FIFO (insertion) order, so a given configuration always
produces the same simulated timeline.  All times are integer CPU cycles at
the processor clock (2 GHz for the paper's Table 1 configuration).

Design notes
------------
UVSIM, the paper's simulator, is cycle-stepped and execution-driven.  A
pure-Python cycle stepper cannot reach 256 processors in reasonable time
(the calibration band for this reproduction explicitly flags that risk), so
this kernel is *event-driven*: components schedule work only when something
happens.  Spin loops — the classic event-count killer — are modelled by the
memory system as subscriptions to cache-line-change events rather than
per-iteration polls (see :mod:`repro.coherence.client`), which preserves the
network/timing behaviour of a real spin at a tiny fraction of the events.
"""

from repro.sim.kernel import Simulator
from repro.sim.primitives import (
    Acquire,
    FifoQueue,
    Gate,
    Resource,
    Signal,
    Timeout,
)
from repro.sim.process import Process

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Signal",
    "Gate",
    "Resource",
    "Acquire",
    "FifoQueue",
]
