"""Waitable primitives processes can ``yield``.

Every primitive implements ``_arm(sim, proc)``: register ``proc`` so the
kernel resumes it when the primitive completes.  Zero-delay resumptions
are appended straight onto the kernel's same-cycle dispatch ring
(``sim._ring``) — equivalent to ``sim.schedule(0, sim._resume, ...)``
but without the call and argument-packing overhead, which matters on the
wake-up storms these primitives implement.  The value the process's
``yield`` expression evaluates to is primitive-specific (documented per
class).

===========  =========================================================
primitive    resumes when / with
===========  =========================================================
Timeout(d)   after ``d`` cycles, with ``None``
Wait(sig)    when the signal fires, with the fired value
Gate.wait()  when the gate is (or already was) opened, with gate value
Acquire(r)   when the FIFO resource grants the caller, with ``None``
queue.get()  when an item is available, with the item
proc.join()  when the process finishes, with its result
===========  =========================================================
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process


class Timeout:
    """Suspend the yielding process for ``delay`` cycles."""

    __slots__ = ("delay",)

    def __init__(self, delay: int) -> None:
        self.delay = delay

    def _arm(self, sim: "Simulator", proc: "Process") -> None:
        d = self.delay
        if d > 0:
            sim._push_future(sim.now + d, proc._rn)
        elif d == 0:
            sim._ring.append(proc._rn)
        else:
            sim.schedule(d, sim._resume, proc, None)  # raises


class Signal:
    """One-shot broadcast event.

    ``fire(value)`` wakes every process currently waiting, delivering
    ``value``.  Waiting on a signal that has already fired resumes
    immediately with the fired value, so reply races (reply arrives the
    same cycle the requester starts waiting) are benign.

    A fresh Signal is typically created per transaction (e.g. one per
    outstanding coherence request) and discarded after use.
    """

    __slots__ = ("_waiters", "fired", "value", "name")

    def __init__(self, name: str = "") -> None:
        self._waiters: list["Process"] = []
        self.fired = False
        self.value: Any = None
        self.name = name

    def fire(self, sim: "Simulator", value: Any = None) -> None:
        """Fire the signal, waking all waiters in FIFO order."""
        if self.fired:
            raise RuntimeError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters = self._waiters
        if waiters:
            self._waiters = []
            for proc in waiters:
                sim._ring.append((sim._resume, (proc, value)))

    def try_fire(self, sim: "Simulator", value: Any = None) -> bool:
        """Fire unless already fired; returns whether it fired.

        Used for reply delivery where a late duplicate is legitimate
        (an active-message reply racing its own retransmission timeout).
        """
        if self.fired:
            return False
        self.fire(sim, value)
        return True

    def wait(self) -> "Wait":
        """Yieldable: suspend until the signal fires."""
        return Wait(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Signal {self.name} fired={self.fired}>"


class Wait:
    """Primitive form of :meth:`Signal.wait` (``yield Wait(sig)``)."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal) -> None:
        self.signal = signal

    def _arm(self, sim: "Simulator", proc: "Process") -> None:
        if self.signal.fired:
            sim._ring.append((sim._resume, (proc, self.signal.value)))
        else:
            self.signal._waiters.append(proc)


class Gate:
    """Level-triggered event: once opened, all waits pass immediately.

    Unlike :class:`Signal`, a gate may be re-armed with :meth:`close`,
    which makes it the natural building block for sense-reversing
    barriers and line-change subscriptions.
    """

    __slots__ = ("_waiters", "open", "value", "name")

    def __init__(self, name: str = "") -> None:
        self._waiters: list["Process"] = []
        self.open = False
        self.value: Any = None
        self.name = name

    def release(self, sim: "Simulator", value: Any = None) -> None:
        """Open the gate, waking current waiters and passing future ones."""
        self.open = True
        self.value = value
        waiters = self._waiters
        if waiters:
            self._waiters = []
            for proc in waiters:
                sim._ring.append((sim._resume, (proc, value)))

    def pulse(self, sim: "Simulator", value: Any = None) -> None:
        """Wake current waiters without leaving the gate open."""
        waiters = self._waiters
        if waiters:
            self._waiters = []
            for proc in waiters:
                sim._ring.append((sim._resume, (proc, value)))

    def close(self) -> None:
        """Re-arm the gate so subsequent waits block again."""
        self.open = False
        self.value = None

    def wait(self) -> "GateWait":
        """Yieldable: pass immediately if open, else block until opened."""
        return GateWait(self)


class GateWait:
    __slots__ = ("gate",)

    def __init__(self, gate: Gate) -> None:
        self.gate = gate

    def _arm(self, sim: "Simulator", proc: "Process") -> None:
        if self.gate.open:
            sim._ring.append((sim._resume, (proc, self.gate.value)))
        else:
            self.gate._waiters.append(proc)


class Resource:
    """FIFO mutual-exclusion resource (a hardware port, a directory slot).

    Usage::

        yield res.acquire()
        try:
            ...exclusive section...
        finally:
            res.release()

    Tracks total busy cycles and grant count so utilization shows up in
    statistics reports.
    """

    __slots__ = ("name", "_busy", "_queue", "grants", "busy_cycles",
                 "_acquired_at", "_sim", "_acquire")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._busy = False
        self._queue: deque["Process"] = deque()
        self.grants = 0
        self.busy_cycles = 0
        self._acquired_at = 0
        self._sim: Optional["Simulator"] = None
        # Acquire is stateless apart from its backref; reuse one instance
        self._acquire = Acquire(self)

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def acquire(self) -> "Acquire":
        """Yieldable: block until this process holds the resource."""
        return self._acquire

    def release(self) -> None:
        """Release; the longest-waiting process (if any) is granted next."""
        if not self._busy:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        sim = self._sim
        assert sim is not None
        self.busy_cycles += sim.now - self._acquired_at
        if self._queue:
            proc = self._queue.popleft()
            self.grants += 1
            self._acquired_at = sim.now
            sim._ring.append(proc._rn)
        else:
            self._busy = False


class Acquire:
    """Primitive form of :meth:`Resource.acquire`."""

    __slots__ = ("resource",)

    def __init__(self, resource: Resource) -> None:
        self.resource = resource

    def _arm(self, sim: "Simulator", proc: "Process") -> None:
        res = self.resource
        res._sim = sim
        if not res._busy:
            res._busy = True
            res.grants += 1
            res._acquired_at = sim.now
            sim._ring.append(proc._rn)
        else:
            res._queue.append(proc)


class FifoQueue:
    """Unbounded FIFO channel between processes.

    ``put`` never blocks; ``yield queue.get()`` blocks until an item is
    available.  Used for hardware request queues (AMU input queue, hub
    dispatch queues) where the *service* side is the bottleneck being
    modelled, not queue capacity.
    """

    __slots__ = ("name", "_items", "_getters", "max_depth", "puts")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._items: deque = deque()
        self._getters: deque["Process"] = deque()
        self.max_depth = 0
        self.puts = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, sim: "Simulator", item: Any) -> None:
        """Enqueue ``item``; wakes the oldest blocked getter, if any."""
        self.puts += 1
        if self._getters:
            proc = self._getters.popleft()
            sim._ring.append((sim._resume, (proc, item)))
        else:
            self._items.append(item)
            self.max_depth = max(self.max_depth, len(self._items))

    def get(self) -> "QueueGet":
        """Yieldable: dequeue the next item, blocking while empty."""
        return QueueGet(self)


class QueueGet:
    __slots__ = ("queue",)

    def __init__(self, queue: FifoQueue) -> None:
        self.queue = queue

    def _arm(self, sim: "Simulator", proc: "Process") -> None:
        q = self.queue
        if q._items:
            item = q._items.popleft()
            sim._ring.append((sim._resume, (proc, item)))
        else:
            q._getters.append(proc)


def all_of(sim: "Simulator", processes: list["Process"]):
    """Coroutine: wait for every process in ``processes`` to finish.

    Returns the list of their results in order.

    .. code-block:: python

        workers = [sim.spawn(work(i)) for i in range(n)]
        results = yield from all_of(sim, workers)
    """
    results = []
    for proc in processes:
        result = yield proc.join()
        results.append(result)
    return results
