"""The discrete-event simulator core.

A :class:`Simulator` owns a binary-heap event queue of
``(time, sequence, callback, args)`` entries.  The ``sequence`` tiebreaker
guarantees FIFO ordering of same-cycle events, which makes every run fully
deterministic — a property the test suite leans on heavily (identical
configurations must produce identical cycle counts and message traces).

Only two things ever enter the queue: plain callbacks scheduled with
:meth:`Simulator.schedule`, and coroutine resumptions scheduled internally
by the waitable primitives in :mod:`repro.sim.primitives`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.sim.process import Process


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (negative delays, running twice...)."""


class Simulator:
    """Deterministic discrete-event simulation kernel.

    Parameters
    ----------
    trace:
        When true, every event dispatch is appended to :attr:`trace_log`
        as ``(time, description)``.  Only used by debugging tests; leaves
        zero overhead when disabled.

    Examples
    --------
    >>> sim = Simulator()
    >>> out = []
    >>> sim.schedule(10, out.append, "a")
    >>> sim.schedule(5, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    >>> sim.now
    10
    """

    def __init__(self, trace: bool = False) -> None:
        self._queue: list[tuple[int, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self._now = 0
        self._running = False
        self.trace = trace
        self.trace_log: list[tuple[int, str]] = []
        self.events_dispatched = 0
        #: live (unfinished) processes, for leak diagnostics in tests
        self.active_processes: set[Process] = set()

    # ------------------------------------------------------------------
    # time & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in CPU cycles."""
        return self._now

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        ``delay`` must be a non-negative integer; zero-delay events run
        after all events already queued for the current cycle (FIFO).
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + int(delay), self._seq, fn, args))

    def schedule_at(self, when: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``when`` (>= now)."""
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self._now})")
        self._seq += 1
        heapq.heappush(self._queue, (int(when), self._seq, fn, args))

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Create a :class:`Process` driving ``gen`` and start it this cycle.

        The generator may ``yield`` any primitive from
        :mod:`repro.sim.primitives` and may delegate to sub-coroutines with
        ``yield from``.  Its ``return`` value becomes ``process.result``.
        """
        proc = Process(gen, name=name, sim=self)
        self.active_processes.add(proc)
        # Start after the current event finishes so spawn() is not reentrant.
        self.schedule(0, self._resume, proc, None)
        return proc

    def _resume(self, proc: Process, value: Any, exc: Optional[BaseException] = None) -> None:
        """Advance ``proc`` by one step, interpreting what it yields."""
        if proc.done:
            return
        try:
            if exc is not None:
                cmd = proc.gen.throw(exc)
            else:
                cmd = proc.gen.send(value)
        except StopIteration as stop:
            proc._finish(getattr(stop, "value", None))
            self.active_processes.discard(proc)
            return
        except BaseException as err:  # propagate with process context
            proc._fail(err)
            self.active_processes.discard(proc)
            raise
        try:
            cmd._arm(self, proc)
        except AttributeError:
            raise SimulationError(
                f"process {proc.name!r} yielded non-primitive {cmd!r}; "
                "yield Timeout/Wait/Acquire/... or use 'yield from' for "
                "sub-coroutines"
            ) from None

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events until the queue empties (or a bound is hit).

        Parameters
        ----------
        until:
            Stop once simulated time would pass this value; events at
            exactly ``until`` still fire.
        max_events:
            Safety valve for runaway simulations; at most ``max_events``
            events are dispatched, and attempting one more raises
            :class:`SimulationError`.

        Returns the final simulated time.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            dispatched = 0
            while self._queue:
                if max_events is not None and dispatched >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
                when, _seq, fn, args = self._queue[0]
                if until is not None and when > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = when
                if self.trace:
                    self.trace_log.append((when, getattr(fn, "__qualname__", repr(fn))))
                fn(*args)
                dispatched += 1
                self.events_dispatched += 1
        finally:
            self._running = False
        return self._now

    def run_process(self, gen: Generator, name: str = "main",
                    max_events: Optional[int] = None) -> Any:
        """Spawn ``gen``, run to completion, and return its result.

        Convenience wrapper used by workloads: raises if the process is
        still blocked when the event queue drains (deadlock detection).
        """
        proc = self.spawn(gen, name=name)
        self.run(max_events=max_events)
        if not proc.done:
            raise SimulationError(
                f"deadlock: process {name!r} still blocked at t={self._now} "
                f"with {len(self.active_processes)} live processes"
            )
        return proc.result

    def pending_events(self) -> int:
        """Number of events currently queued (diagnostic)."""
        return len(self._queue)
