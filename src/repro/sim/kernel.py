"""The discrete-event simulator core.

A :class:`Simulator` owns a **two-tier event queue**:

* a same-cycle FIFO *dispatch ring* (a deque) holding every event due at
  the current time — the overwhelmingly common case, since most events
  schedule at ``now`` (process resumptions) or at ``now + fixed_latency``;
* a binary heap of *timestamps*, each owning a FIFO bucket (a pooled,
  recycled list) of the events due at that time.

Same-cycle events bypass the heap entirely; future events cost one heap
push per **distinct timestamp**, not per event, so an N-target fan-out
landing on one cycle (a 255-way invalidation wave, a word-update push)
pays a single heap operation.  Events are plain ``(fn, args)`` tuples —
CPython's tuple free list makes them cheaper than any pooled record
object — and drained buckets are cleared and recycled, so steady-state
scheduling allocates almost nothing.

Dispatch order is strict time order; within one cycle, events fire in
two phases:

1. the **delivery phase** — network deliveries scheduled through
   :meth:`Simulator._push_delivery`, dispatched in ``(src, seq)`` key
   order, where ``src`` is the injecting node and ``seq`` a per-source
   injection sequence number.  The key depends only on the *sender's*
   own history, never on global event interleaving, which is what makes
   a sharded run (see :mod:`repro.shard`) dispatch same-cycle arrivals
   in exactly the order the single-process kernel does;
2. everything else, FIFO in schedule order (ring order == push order).

Every run remains fully deterministic — a property the test suite leans
on heavily (identical configurations must produce identical cycle
counts, message traces, and ``events_dispatched``; see
``tests/integration/test_determinism_parity.py``).

Only three things ever enter the queue: plain callbacks scheduled with
:meth:`Simulator.schedule`, coroutine resumptions scheduled internally
by the waitable primitives in :mod:`repro.sim.primitives`, and network
deliveries keyed through :meth:`Simulator._push_delivery`.
"""

from __future__ import annotations

import heapq
from collections import deque
from types import GeneratorType
from typing import Any, Callable, Generator, Optional

from repro.sim.process import Process


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (negative delays, running twice...)."""


class Simulator:
    """Deterministic discrete-event simulation kernel.

    Parameters
    ----------
    trace:
        When true, every event dispatch is appended to :attr:`trace_log`
        as ``(time, description)``.  Only used by debugging tests; leaves
        zero overhead when disabled.

    Examples
    --------
    >>> sim = Simulator()
    >>> out = []
    >>> sim.schedule(10, out.append, "a")
    >>> sim.schedule(5, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    >>> sim.now
    10
    """

    def __init__(self, trace: bool = False) -> None:
        #: current simulated time in CPU cycles (read-only for model code)
        self.now = 0
        #: events due at the current time, in FIFO dispatch order
        self._ring: deque[tuple] = deque()
        #: future time -> FIFO list of events due then
        self._buckets: dict[int, list] = {}
        #: min-heap of the distinct timestamps present in ``_buckets``
        self._times: list[int] = []
        #: recycled (cleared) bucket lists
        self._bucket_pool: list[list] = []
        #: future time -> list of ``(key, event)`` delivery-phase entries,
        #: sorted by key and dispatched *before* the regular bucket
        self._phase: dict[int, list] = {}
        self._running = False
        self.trace = trace
        self.trace_log: list[tuple[int, str]] = []
        self.events_dispatched = 0
        #: live (unfinished) processes, for leak diagnostics in tests
        self.active_processes: set[Process] = set()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        ``delay`` must be a non-negative integer; zero-delay events run
        after all events already queued for the current cycle (FIFO).
        """
        if delay == 0:
            self._ring.append((fn, args))
        elif delay > 0:
            self._push_future(self.now + int(delay), (fn, args))
        else:
            raise SimulationError(f"negative delay {delay!r}")

    def schedule_at(self, when: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``when`` (>= now)."""
        if when == self.now:
            self._ring.append((fn, args))
        elif when > self.now:
            self._push_future(int(when), (fn, args))
        else:
            raise SimulationError(
                f"cannot schedule in the past ({when} < {self.now})")

    def _push_future(self, when: int, ev: tuple) -> None:
        bucket = self._buckets.get(when)
        if bucket is None:
            pool = self._bucket_pool
            bucket = pool.pop() if pool else []
            self._buckets[when] = bucket
            heapq.heappush(self._times, when)
        bucket.append(ev)

    def _push_delivery(self, when: int, key: tuple, ev: tuple) -> None:
        """Queue a network delivery for the cycle-start delivery phase.

        ``key`` must be ``(src, seq)`` with ``seq`` strictly increasing
        per ``src`` — unique keys, totally ordered, derived only from
        the sender's own injection history.  Deliveries at ``when`` fire
        before that cycle's regular bucket, in key order; this is the
        canonical arrival order that sharded execution reproduces.
        """
        if when <= self.now:
            raise SimulationError(
                f"delivery must be in the future ({when} <= {self.now})")
        if self._buckets.get(when) is None:
            pool = self._bucket_pool
            self._buckets[when] = pool.pop() if pool else []
            heapq.heappush(self._times, when)
        phase = self._phase.get(when)
        if phase is None:
            self._phase[when] = phase = []
        phase.append((key, ev))

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Create a :class:`Process` driving ``gen`` and start it this cycle.

        The generator may ``yield`` any primitive from
        :mod:`repro.sim.primitives` and may delegate to sub-coroutines with
        ``yield from``.  Its ``return`` value becomes ``process.result``.

        Sub-coroutines may also be yielded *directly* (``yield sub()``
        instead of ``yield from sub()``): the kernel then drives the inner
        generator through an explicit per-process stack, so each resume
        costs one frame regardless of call depth — semantically identical
        to ``yield from`` (same values, same exception flow, same event
        counts) but without paying one Python frame per nesting level per
        resume on hot paths.
        """
        proc = Process(gen, name=name, sim=self)
        self.active_processes.add(proc)
        # Start after the current event finishes so spawn() is not reentrant.
        self._ring.append(proc._rn)
        return proc

    def _resume(self, proc: Process, value: Any,
                exc: Optional[BaseException] = None) -> None:
        """Advance ``proc`` by one step, interpreting what it yields.

        The loop is the flattened resume trampoline: yielded generators
        are pushed onto the process's call stack and driven directly, so
        deep coroutine chains resume in O(1) instead of O(depth).
        """
        if proc.done:
            return
        gen = proc.gen
        stack = proc.stack
        while True:
            try:
                if exc is not None:
                    err_in, exc = exc, None
                    cmd = gen.throw(err_in)
                else:
                    cmd = gen.send(value)
            except StopIteration as stop:
                if stack:
                    # inner coroutine returned: resume its caller inline
                    proc.gen = gen = stack.pop()
                    value = stop.value
                    continue
                proc._finish(stop.value)
                self.active_processes.discard(proc)
                return
            except BaseException as err:
                if stack:
                    # propagate into the caller (its try/finally must run)
                    proc.gen = gen = stack.pop()
                    exc = err
                    continue
                proc._fail(err)
                self.active_processes.discard(proc)
                raise
            if type(cmd) is GeneratorType:
                # sub-call: push the caller, drive the inner generator
                stack.append(gen)
                proc.gen = gen = cmd
                value = None
                continue
            try:
                cmd._arm(self, proc)
            except AttributeError:
                raise SimulationError(
                    f"process {proc.name!r} yielded non-primitive {cmd!r}; "
                    "yield Timeout/Wait/Acquire/... or use 'yield from' for "
                    "sub-coroutines"
                ) from None
            return

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events until the queue empties (or a bound is hit).

        Parameters
        ----------
        until:
            Stop once simulated time would pass this value; events at
            exactly ``until`` still fire.
        max_events:
            Safety valve for runaway simulations; at most ``max_events``
            events are dispatched, and attempting one more raises
            :class:`SimulationError`.

        Returns the final simulated time.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        ring = self._ring
        buckets = self._buckets
        times = self._times
        bucket_pool = self._bucket_pool
        phase_map = self._phase
        heappop = heapq.heappop
        # -1 == unbounded (``dispatched`` only ever equals a non-negative bound)
        max_ev = -1 if max_events is None else max_events
        # The dispatch loop is bound once per run() on the trace flag: the
        # untraced variant carries zero per-event trace branches.  The two
        # loops are otherwise line-for-line identical.
        trace_log = self.trace_log if self.trace else None
        dispatched = 0
        base_dispatched = self.events_dispatched
        try:
            if trace_log is None:
                while True:
                    while ring:
                        if dispatched == max_ev:
                            raise SimulationError(
                                f"exceeded max_events={max_events}")
                        fn, args = ring.popleft()
                        fn(*args)
                        dispatched += 1
                    if not times:
                        break
                    # events remain: the bound is checked before looking at
                    # ``until`` so a capped run with work pending always
                    # raises
                    if dispatched == max_ev:
                        raise SimulationError(
                            f"exceeded max_events={max_events}")
                    when = times[0]
                    if until is not None and when > until:
                        self.now = until
                        break
                    heappop(times)
                    self.now = when
                    phase = phase_map.pop(when, None)
                    if phase is not None:
                        # delivery phase: canonical (src, seq) arrival order
                        if len(phase) > 1:
                            phase.sort()
                        ring.extend(entry[1] for entry in phase)
                    bucket = buckets.pop(when)
                    ring.extend(bucket)
                    bucket.clear()
                    bucket_pool.append(bucket)
            else:
                while True:
                    while ring:
                        if dispatched == max_ev:
                            raise SimulationError(
                                f"exceeded max_events={max_events}")
                        fn, args = ring.popleft()
                        trace_log.append(
                            (self.now, getattr(fn, "__qualname__", repr(fn))))
                        fn(*args)
                        dispatched += 1
                    if not times:
                        break
                    if dispatched == max_ev:
                        raise SimulationError(
                            f"exceeded max_events={max_events}")
                    when = times[0]
                    if until is not None and when > until:
                        self.now = until
                        break
                    heappop(times)
                    self.now = when
                    phase = phase_map.pop(when, None)
                    if phase is not None:
                        if len(phase) > 1:
                            phase.sort()
                        ring.extend(entry[1] for entry in phase)
                    bucket = buckets.pop(when)
                    ring.extend(bucket)
                    bucket.clear()
                    bucket_pool.append(bucket)
        finally:
            self._running = False
            self.events_dispatched = base_dispatched + dispatched
        return self.now

    def run_process(self, gen: Generator, name: str = "main",
                    max_events: Optional[int] = None) -> Any:
        """Spawn ``gen``, run to completion, and return its result.

        Convenience wrapper used by workloads: raises if the process is
        still blocked when the event queue drains (deadlock detection).
        """
        proc = self.spawn(gen, name=name)
        self.run(max_events=max_events)
        if not proc.done:
            raise SimulationError(
                f"deadlock: process {name!r} still blocked at t={self.now} "
                f"with {len(self.active_processes)} live processes"
            )
        return proc.result

    def pending_events(self) -> int:
        """Number of events currently queued (diagnostic)."""
        return (len(self._ring)
                + sum(len(b) for b in self._buckets.values())
                + sum(len(p) for p in self._phase.values()))

    def next_event_time(self) -> Optional[int]:
        """Earliest time any queued event is due, or ``None`` if drained.

        Used by the sharded window loop to propose the next global
        window start; ring events are due *now*.
        """
        if self._ring:
            return self.now
        if self._times:
            return self._times[0]
        return None
