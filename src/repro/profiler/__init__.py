"""Sharing-pattern profiling: find the hot lines and diagnose them.

:class:`~repro.profiler.sharing.SharingProfiler` watches coherence
traffic per cache line and attributes it back to the named variables of
the address space, producing the report a performance engineer wants
from a CC-NUMA run: which synchronization variables caused the
invalidation storms, which lines ping-pong between owners, and which
lines look like *false sharing* (multiple CPUs writing distinct words of
one line) — the §3.3.1 pathology the paper's "optimized" barrier coding
exists to avoid.
"""

from repro.profiler.sharing import LineProfile, SharingProfiler

__all__ = ["SharingProfiler", "LineProfile"]
