"""Per-line coherence-traffic profiles and the false-sharing heuristic.

The profiler subscribes to the network's send hooks (so it composes
with the tracer and metrics, in any attach order) and classifies
every coherence packet by the line it targets.  Symbol attribution comes
from the machine's address space: profiles report variable names, not
raw addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.mem.address import LINE_BYTES, line_base, word_base
from repro.network.message import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine

#: packet kinds attributed to line-level sharing activity
_TRACKED = {
    MessageKind.GET_S, MessageKind.GET_X, MessageKind.INVALIDATE,
    MessageKind.INTERVENTION, MessageKind.WORD_UPDATE,
    MessageKind.AMO_REQUEST, MessageKind.MAO_REQUEST,
}


@dataclass
class LineProfile:
    """Accumulated sharing activity for one cache line."""

    line_addr: int
    symbols: list[str] = field(default_factory=list)
    reads: int = 0               # GET_S
    ownership_transfers: int = 0  # GET_X + interventions
    invalidations: int = 0
    word_updates: int = 0
    memory_side_ops: int = 0     # AMO/MAO commands
    requesters: set = field(default_factory=set)
    words_touched: set = field(default_factory=set)

    @property
    def total_events(self) -> int:
        return (self.reads + self.ownership_transfers + self.invalidations
                + self.word_updates + self.memory_side_ops)

    @property
    def false_sharing_suspect(self) -> bool:
        """Multiple CPUs, multiple distinct words, and coherence churn
        (invalidations or ownership ping-pong): the classic false-sharing
        signature."""
        churn = self.invalidations + self.ownership_transfers
        return (len(self.words_touched) >= 2
                and len(self.requesters) >= 2
                and churn >= 3 * len(self.requesters))

    def describe(self) -> str:
        name = "+".join(self.symbols) if self.symbols \
            else f"{self.line_addr:#x}"
        flags = " [FALSE-SHARING?]" if self.false_sharing_suspect else ""
        return (f"{name}: {self.total_events} events "
                f"(reads={self.reads} xfers={self.ownership_transfers} "
                f"invals={self.invalidations} updates={self.word_updates} "
                f"mem-ops={self.memory_side_ops}) "
                f"{len(self.requesters)} CPUs, "
                f"{len(self.words_touched)} words{flags}")


class SharingProfiler:
    """Line-granularity coherence-traffic profiler."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self._profiles: dict[int, LineProfile] = {}
        self._symbol_map = self._build_symbol_map(machine)

    @staticmethod
    def _build_symbol_map(machine: "Machine") -> dict[int, list[str]]:
        out: dict[int, list[str]] = {}
        for name, var in machine.address_space.symbols.items():
            for i in range(var.words):
                line = line_base(var.word_addr(i))
                names = out.setdefault(line, [])
                if name not in names:
                    names.append(name)
        return out

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, machine: "Machine") -> "SharingProfiler":
        """Hook the profiler into ``machine`` (composes with a tracer)."""
        profiler = cls(machine)

        def on_send(msg: Message, hops: int) -> None:
            profiler.observe(msg)

        machine.net.subscribe_send(on_send)
        return profiler

    def observe(self, msg: Message) -> None:
        if msg.kind not in _TRACKED or msg.addr is None:
            return
        line = line_base(msg.addr)
        prof = self._profiles.get(line)
        if prof is None:
            prof = LineProfile(line_addr=line,
                               symbols=self._symbol_map.get(line, []))
            self._profiles[line] = prof
        kind = msg.kind
        if kind is MessageKind.GET_S:
            prof.reads += 1
        elif kind in (MessageKind.GET_X, MessageKind.INTERVENTION):
            prof.ownership_transfers += 1
        elif kind is MessageKind.INVALIDATE:
            prof.invalidations += 1
        elif kind is MessageKind.WORD_UPDATE:
            prof.word_updates += 1
        else:
            prof.memory_side_ops += 1
        if msg.requester is not None:
            prof.requesters.add(msg.requester)
        prof.words_touched.add(word_base(msg.addr))

    # ------------------------------------------------------------------
    def profile_of(self, addr: int) -> Optional[LineProfile]:
        """Profile of the line containing ``addr`` (None = no traffic)."""
        return self._profiles.get(line_base(addr))

    def hottest(self, n: int = 10) -> list[LineProfile]:
        """The ``n`` busiest lines, by total coherence events."""
        return sorted(self._profiles.values(),
                      key=lambda p: p.total_events, reverse=True)[:n]

    def false_sharing_suspects(self) -> list[LineProfile]:
        return [p for p in self._profiles.values()
                if p.false_sharing_suspect]

    def report(self, top: int = 10) -> str:
        """Human-readable hot-line report."""
        lines = [f"hot lines (top {top} of {len(self._profiles)}):"]
        for prof in self.hottest(top):
            lines.append(f"  {prof.describe()}")
        suspects = self.false_sharing_suspects()
        if suspects:
            lines.append(f"false-sharing suspects: "
                         f"{', '.join('+'.join(p.symbols) or hex(p.line_addr) for p in suspects)}")
        return "\n".join(lines)

    @property
    def lines_profiled(self) -> int:
        return len(self._profiles)

    @staticmethod
    def line_span() -> int:
        """Line granularity used for attribution (bytes)."""
        return LINE_BYTES
