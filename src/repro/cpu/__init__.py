"""Processor model (part of substrate S3).

The simulator is transaction-level: a :class:`~repro.cpu.processor.Processor`
is the per-CPU façade that software threads (coroutines) use to issue
memory and synchronization operations.  Pipeline details (4-issue width,
48-entry active list) are folded into a fixed per-operation overhead as
described in DESIGN.md §3.
"""

from repro.cpu.processor import Processor

__all__ = ["Processor"]
