"""The per-CPU programming interface.

A :class:`Processor` bundles the CPU's cache controller, MAO port and
active-message sequencing, and charges the fixed processor-side issue
overhead on every operation.  Synchronization algorithms
(:mod:`repro.sync`) are written against this interface only, so a single
barrier/lock implementation runs over every mechanism.

All public methods are coroutines — call them with ``yield from`` inside
a simulated thread.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.amu.ops import AmoCommand
from repro.coherence.client import CacheController
from repro.mao.unit import MaoPort
from repro.mem.address import home_of
from repro.network.message import Message, MessageKind
from repro.sim.primitives import Signal, Timeout
from repro.trace.recorder import traced_op

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Hub, Machine


class Processor:
    """One simulated CPU."""

    __slots__ = ("cpu_id", "hub", "node", "sim", "config", "machine",
                 "controller", "mao_port", "_am_seq", "amo_ops",
                 "_t_overhead")

    def __init__(self, cpu_id: int, hub: "Hub") -> None:
        self.cpu_id = cpu_id
        self.hub = hub
        self.node = hub.node
        self.sim = hub.sim
        self.config = hub.config
        self.machine: "Machine" = hub.machine
        ctrl_cls = hub._controller_cls or CacheController
        self.controller = ctrl_cls(cpu_id, hub)
        self.mao_port = MaoPort(cpu_id, hub)
        self._am_seq = 0
        self.amo_ops = 0
        # fixed per-op issue overhead: Timeout is stateless, reuse one
        self._t_overhead = Timeout(self.config.processor.op_overhead_cycles)

    # ------------------------------------------------------------------
    def _overhead(self):
        yield self._t_overhead

    def delay(self, cycles: int):
        """Coroutine: local computation for ``cycles`` (no memory traffic)."""
        yield Timeout(cycles)

    # ------------------------------------------------------------------
    # coherent memory operations
    # ------------------------------------------------------------------
    # Controller coroutines are bare-yielded (not ``yield from``) to
    # the kernel's flattened subcall stack: each resume of a multi-hop
    # transaction costs one frame instead of walking this delegation
    # chain (see Simulator.spawn and Processor.spin_until).
    @traced_op
    def load(self, addr: int):
        """Coroutine: coherent load; returns the word value."""
        yield self._t_overhead
        value = yield self.controller.load(addr)
        return value

    @traced_op
    def store(self, addr: int, value: int):
        """Coroutine: coherent store."""
        yield self._t_overhead
        yield self.controller.store(addr, value)

    @traced_op
    def load_linked(self, addr: int):
        yield self._t_overhead
        value = yield self.controller.load_linked(addr)
        return value

    @traced_op
    def store_conditional(self, addr: int, value: int):
        yield self._t_overhead
        ok = yield self.controller.store_conditional(addr, value)
        return ok

    @traced_op
    def llsc_rmw(self, addr: int, fn: Callable[[int], int]):
        """Coroutine: LL/SC retry loop; returns the pre-RMW value."""
        yield self._t_overhead
        old = yield self.controller.ll_sc_rmw(addr, fn)
        return old

    @traced_op
    def atomic_rmw(self, addr: int, fn: Callable[[int], int]):
        """Coroutine: processor-side atomic instruction; returns old value."""
        yield self._t_overhead
        old = yield self.controller.atomic_rmw(addr, fn)
        return old

    @traced_op
    def spin_until(self, addr: int, predicate: Callable[[int], bool]):
        """Coroutine: cached spin until ``predicate(value)`` holds.

        The controller coroutine is yielded to the kernel's flattened
        trampoline (not delegated with ``yield from``): a contended spin
        resumes many times per call, and the trampoline makes each
        wake-up O(1) instead of walking this delegation chain.
        """
        value = yield self.controller.spin_until(addr, predicate)
        return value

    # ------------------------------------------------------------------
    # active memory operations (the paper's contribution)
    # ------------------------------------------------------------------
    @traced_op
    def amo(self, op: str, addr: int, operand: Any = 1,
            test: Optional[int] = None, push: Optional[bool] = None,
            wait_reply: bool = True):
        """Coroutine: ship an atomic op to the home AMU; returns old value.

        Parameters mirror the AMO instruction encoding: ``test`` is the
        §3.2 test value (result match triggers the fine-grained put);
        ``push`` overrides the op's default update-push behaviour.

        ``wait_reply=False`` models an AMO whose destination register is
        never read (a lock release, a barrier arrival): the out-of-order
        core retires past it without stalling.  The reply is still sent
        and counted — the instruction has a register writeback — but
        this coroutine returns after injection, yielding ``None``.
        """
        yield self._t_overhead
        self.amo_ops += 1
        sig = Signal()
        yield self.hub.egress_send(Message(
            kind=MessageKind.AMO_REQUEST, src_node=self.node,
            dst_node=home_of(addr), addr=addr,
            payload=AmoCommand(op=op, operand=operand, test=test, push=push),
            reply_to=sig, requester=self.cpu_id))
        if not wait_reply:
            return None
        reply = yield sig.wait()
        return reply.value

    def amo_inc(self, addr: int, test: Optional[int] = None,
                wait_reply: bool = True):
        """Coroutine: ``amo.inc`` — increment by one, optional test value."""
        old = yield from self.amo("inc", addr, operand=1, test=test,
                                  wait_reply=wait_reply)
        return old

    def amo_fetchadd(self, addr: int, delta: int = 1,
                     wait_reply: bool = True):
        """Coroutine: ``amo.fetchadd`` — add and push the update (§3.3.2)."""
        old = yield from self.amo("fetchadd", addr, operand=delta,
                                  wait_reply=wait_reply)
        return old

    # ------------------------------------------------------------------
    # conventional memory-side atomics
    # ------------------------------------------------------------------
    @traced_op
    def mao_rmw(self, addr: int, op: str = "fetchadd", operand: Any = 1):
        """Coroutine: uncached memory-side atomic; returns old value."""
        yield self._t_overhead
        old = yield self.mao_port.rmw(addr, op, operand)
        return old

    @traced_op
    def uncached_read(self, addr: int):
        yield self._t_overhead
        value = yield self.controller.uncached_read(addr)
        return value

    @traced_op
    def uncached_write(self, addr: int, value: int):
        yield self._t_overhead
        yield self.controller.uncached_write(addr, value)

    # ------------------------------------------------------------------
    # active messages
    # ------------------------------------------------------------------
    @traced_op
    def am_call(self, home_node: int, handler: str, args: Any):
        """Coroutine: run ``handler`` on ``home_node``'s main processor;
        returns the handler result (retransmits on timeout)."""
        yield self._t_overhead
        seq = self._am_seq
        self._am_seq += 1
        result = yield from self.hub.actmsg.call_remote(
            self.cpu_id, seq, home_node, handler, args)
        return result

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Processor cpu{self.cpu_id} node{self.node}>"
