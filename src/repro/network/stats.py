"""Traffic accounting for the interconnect.

Counts every packet by :class:`~repro.network.message.MessageKind`, in
messages, bytes, and hop-weighted bytes (bytes x hops: link occupancy,
closest to what "network traffic" means in the paper's Figure 7).  Local
(same-node, crossbar) deliveries are tracked separately so the Figure 1
message-anatomy counts only true network messages.

A lightweight trace can be enabled per-run to capture the exact message
sequence of small scenarios (the 18-vs-6 message comparison).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.network.message import Message, MessageKind


@dataclass
class TraceEntry:
    """One traced packet: when it was injected and what it was."""

    time: int
    kind: MessageKind
    src_node: int
    dst_node: int
    addr: Optional[int]
    is_retransmit: bool = False

    def __repr__(self) -> str:  # pragma: no cover
        addr = f" a={self.addr:#x}" if self.addr is not None else ""
        rt = " RT" if self.is_retransmit else ""
        return (f"[{self.time:>8}] {self.kind.value:<22} "
                f"{self.src_node}->{self.dst_node}{addr}{rt}")


@dataclass
class TrafficStats:
    """Aggregate interconnect traffic counters."""

    messages: Counter = field(default_factory=Counter)       # kind -> count
    bytes: Counter = field(default_factory=Counter)          # kind -> bytes
    hop_bytes: Counter = field(default_factory=Counter)      # kind -> bytes*hops
    local_messages: Counter = field(default_factory=Counter)
    retransmits: int = 0
    trace_enabled: bool = False
    trace: list[TraceEntry] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record(self, time: int, msg: Message, hops: int) -> None:
        """Account one packet traversing ``hops`` network hops."""
        if hops == 0:
            self.local_messages[msg.kind] += 1
        else:
            self.messages[msg.kind] += 1
            self.bytes[msg.kind] += msg.size_bytes
            self.hop_bytes[msg.kind] += msg.size_bytes * hops
        if msg.is_retransmit:
            self.retransmits += 1
        if self.trace_enabled:
            self.trace.append(TraceEntry(time, msg.kind, msg.src_node,
                                         msg.dst_node, msg.addr,
                                         msg.is_retransmit))

    # ------------------------------------------------------------------
    @property
    def total_messages(self) -> int:
        """Network (remote) messages only."""
        return sum(self.messages.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    @property
    def total_hop_bytes(self) -> int:
        return sum(self.hop_bytes.values())

    @property
    def total_local_messages(self) -> int:
        return sum(self.local_messages.values())

    def messages_of(self, *kinds: MessageKind) -> int:
        return sum(self.messages[k] for k in kinds)

    def snapshot(self) -> "TrafficStats":
        """Deep copy of the counters (trace not copied)."""
        return TrafficStats(
            messages=Counter(self.messages),
            bytes=Counter(self.bytes),
            hop_bytes=Counter(self.hop_bytes),
            local_messages=Counter(self.local_messages),
            retransmits=self.retransmits,
        )

    def delta_since(self, earlier: "TrafficStats") -> "TrafficStats":
        """Traffic accumulated since an earlier :meth:`snapshot`."""
        out = TrafficStats()
        out.messages = self.messages - earlier.messages
        out.bytes = self.bytes - earlier.bytes
        out.hop_bytes = self.hop_bytes - earlier.hop_bytes
        out.local_messages = self.local_messages - earlier.local_messages
        out.retransmits = self.retransmits - earlier.retransmits
        return out

    def reset(self) -> None:
        self.messages.clear()
        self.bytes.clear()
        self.hop_bytes.clear()
        self.local_messages.clear()
        self.retransmits = 0
        self.trace.clear()

    def format_report(self) -> str:
        """Human-readable per-kind traffic table."""
        lines = [f"{'kind':<24}{'msgs':>10}{'bytes':>12}{'hop-bytes':>14}"]
        for kind in sorted(self.messages, key=lambda k: k.value):
            lines.append(
                f"{kind.value:<24}{self.messages[kind]:>10}"
                f"{self.bytes[kind]:>12}{self.hop_bytes[kind]:>14}"
            )
        lines.append(
            f"{'TOTAL':<24}{self.total_messages:>10}"
            f"{self.total_bytes:>12}{self.total_hop_bytes:>14}"
        )
        if self.retransmits:
            lines.append(f"retransmits: {self.retransmits}")
        return "\n".join(lines)
