"""Deterministic delay-fault injection for protocol robustness testing.

The coherence protocol must be correct under *any* message timing, not
just the timings the latency model happens to produce.  A
:class:`DelayInjector` perturbs per-message delivery latency
deterministically (seeded hash of the message id), which gives the test
suite a metamorphic lever: run the same workload under many different
timing universes and assert that every *functional* outcome (final
memory values, mutual exclusion, barrier ordering) is identical, while
only the cycle counts move.

This is how the writeback/intervention, MSHR-poison and update-overtake
races get systematically exercised instead of waiting for the one
schedule that hits them.

Not a message-loss model: the interconnect is reliable (as NUMALink is);
only active messages have a retransmission story, and that is tested
separately via short timeouts.

A :class:`ReorderInjector` goes one universe further: it *relaxes the
per-(src,dst) FIFO guarantee itself* — the weak-memory fabric where
CNA-class queue-lock bugs live (Paolillo et al.).  Messages between the
same node pair that target **different cache lines** may overtake each
other within a bounded window of extra cycles; same-line traffic keeps
the point-to-point order the coherence protocol's per-line state
machines require (modern NUMA fabrics guarantee exactly this per-address
ordering and nothing more).  Like the delay injector it is seeded and
deterministic, per-kind filterable, off by default, and — because the
fabric takes the unmodified fast path whenever no injector is attached —
provably cycle-identical when off.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.network.message import Message, MessageKind


class DelayInjector:
    """Deterministic pseudo-random extra delivery latency per message.

    Parameters
    ----------
    seed:
        Different seeds give different (but reproducible) timing
        universes.
    max_extra_cycles:
        Upper bound on injected delay (uniform over [0, max]).
    kinds:
        Restrict injection to specific message kinds (None = all).
    """

    def __init__(self, seed: int, max_extra_cycles: int = 500,
                 kinds: Optional[set[MessageKind]] = None) -> None:
        if max_extra_cycles < 0:
            raise ValueError("max_extra_cycles must be >= 0")
        self.seed = seed
        self.max_extra = max_extra_cycles
        self.kinds = kinds
        self.injected_total = 0
        self.messages_delayed = 0
        self._seq = 0

    def extra_delay(self, msg: Message) -> int:
        """Deterministic extra cycles for this message."""
        if self.max_extra == 0:
            return 0
        if self.kinds is not None and msg.kind not in self.kinds:
            return 0
        # hash an injector-local sequence number, not the global message
        # id — the injection pattern must be a pure function of the run,
        # reproducible across repeated Machine constructions
        self._seq += 1
        key = f"{self.seed}:{self._seq}:{msg.kind.value}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        extra = int.from_bytes(digest, "big") % (self.max_extra + 1)
        if extra:
            self.messages_delayed += 1
            self.injected_total += extra
        return extra

    @staticmethod
    def install(machine, seed: int, max_extra_cycles: int = 500,
                kinds: Optional[set[MessageKind]] = None) -> "DelayInjector":
        """Attach an injector to a machine's network."""
        injector = DelayInjector(seed, max_extra_cycles, kinds)
        machine.net.delay_injector = injector
        return injector


class ReorderInjector:
    """Bounded relaxation of the fabric's per-(src,dst) FIFO guarantee.

    With an injector attached, the fabric orders deliveries per
    (src, dst, cache line) instead of per (src, dst): messages between
    the same node pair that touch *different* lines may overtake each
    other, pushed apart by a seeded jitter of up to ``window_cycles``.
    Same-line traffic stays strictly ordered (the per-line coherence
    state machines require it), so the sanitizer's protocol invariants
    keep holding while algorithm-level ordering assumptions — the kind
    CNA-class lock bugs hide behind — get falsified.

    Parameters
    ----------
    seed:
        Different seeds give different (but reproducible) interleaving
        universes.
    window_cycles:
        Upper bound on injected jitter (uniform over [0, window]); this
        bounds how far any message can be pushed past later traffic.
        Must be >= 1 — "reordering with window 0" is the strict-FIFO
        universe, expressed by *not installing* an injector so the
        fabric fast path stays untouched.
    kinds:
        Restrict jitter to specific message kinds (None = all).  The
        per-line FIFO relaxation applies fabric-wide regardless; the
        filter only controls which messages receive jitter.
    """

    def __init__(self, seed: int, window_cycles: int,
                 kinds: Optional[set[MessageKind]] = None,
                 line_bytes: int = 128) -> None:
        if window_cycles < 1:
            raise ValueError(
                "window_cycles must be >= 1; strict FIFO is expressed by "
                "not installing a ReorderInjector")
        self.seed = seed
        self.window = window_cycles
        self.kinds = kinds
        self.line_bytes = line_bytes
        self.injected_total = 0
        self.messages_jittered = 0
        self._seq = 0

    def extra_delay(self, msg: Message) -> int:
        """Deterministic extra cycles of reorder jitter for this message."""
        if self.kinds is not None and msg.kind not in self.kinds:
            return 0
        # injector-local sequence number for the same reproducibility
        # reason as DelayInjector; a distinct domain tag keeps the two
        # streams independent when both injectors are armed
        self._seq += 1
        key = f"reorder:{self.seed}:{self._seq}:{msg.kind.value}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        extra = int.from_bytes(digest, "big") % (self.window + 1)
        if extra:
            self.messages_jittered += 1
            self.injected_total += extra
        return extra

    def order_key(self, msg: Message):
        """FIFO-floor key: per (src, dst, line) instead of per (src, dst).

        Messages without a target address (None) are conservatively
        serialized per node pair — active-message handlers may touch
        arbitrary state, so they keep the strong order.
        """
        if msg.addr is None:
            return (msg.src_node, msg.dst_node, None)
        return (msg.src_node, msg.dst_node, msg.addr // self.line_bytes)

    @staticmethod
    def install(machine, seed: int, window_cycles: int,
                kinds: Optional[set[MessageKind]] = None) -> "ReorderInjector":
        """Attach a reorder injector to a machine's network."""
        injector = ReorderInjector(seed, window_cycles, kinds,
                                   line_bytes=machine.config.line_bytes)
        machine.net.reorder_injector = injector
        return injector
