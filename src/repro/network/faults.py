"""Deterministic delay-fault injection for protocol robustness testing.

The coherence protocol must be correct under *any* message timing, not
just the timings the latency model happens to produce.  A
:class:`DelayInjector` perturbs per-message delivery latency
deterministically (seeded hash of the message id), which gives the test
suite a metamorphic lever: run the same workload under many different
timing universes and assert that every *functional* outcome (final
memory values, mutual exclusion, barrier ordering) is identical, while
only the cycle counts move.

This is how the writeback/intervention, MSHR-poison and update-overtake
races get systematically exercised instead of waiting for the one
schedule that hits them.

Not a message-loss model: the interconnect is reliable (as NUMALink is);
only active messages have a retransmission story, and that is tested
separately via short timeouts.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.network.message import Message, MessageKind


class DelayInjector:
    """Deterministic pseudo-random extra delivery latency per message.

    Parameters
    ----------
    seed:
        Different seeds give different (but reproducible) timing
        universes.
    max_extra_cycles:
        Upper bound on injected delay (uniform over [0, max]).
    kinds:
        Restrict injection to specific message kinds (None = all).
    """

    def __init__(self, seed: int, max_extra_cycles: int = 500,
                 kinds: Optional[set[MessageKind]] = None) -> None:
        if max_extra_cycles < 0:
            raise ValueError("max_extra_cycles must be >= 0")
        self.seed = seed
        self.max_extra = max_extra_cycles
        self.kinds = kinds
        self.injected_total = 0
        self.messages_delayed = 0
        self._seq = 0

    def extra_delay(self, msg: Message) -> int:
        """Deterministic extra cycles for this message."""
        if self.max_extra == 0:
            return 0
        if self.kinds is not None and msg.kind not in self.kinds:
            return 0
        # hash an injector-local sequence number, not the global message
        # id — the injection pattern must be a pure function of the run,
        # reproducible across repeated Machine constructions
        self._seq += 1
        key = f"{self.seed}:{self._seq}:{msg.kind.value}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        extra = int.from_bytes(digest, "big") % (self.max_extra + 1)
        if extra:
            self.messages_delayed += 1
            self.injected_total += extra
        return extra

    @staticmethod
    def install(machine, seed: int, max_extra_cycles: int = 500,
                kinds: Optional[set[MessageKind]] = None) -> "DelayInjector":
        """Attach an injector to a machine's network."""
        injector = DelayInjector(seed, max_extra_cycles, kinds)
        machine.net.delay_injector = injector
        return injector
