"""Fat-tree interconnect topology (NUMALink-4-like).

The paper: "The interconnect is built using a fat-tree structure, where
each non-leaf router has eight children."  Nodes (each holding two CPUs
and one hub) hang off leaf routers, eight per router; routers aggregate
eight-fold per level until a single root spans the machine.

Hop counting: node→router and router→router links are one hop each, so
two nodes under the same leaf router are 2 hops apart, under the same
level-1 router 4 hops, and so on — giving the 100-cycle-per-hop latencies
their distance structure.

The topology is also exposed as a :mod:`networkx` graph for analysis and
tests (symmetry, triangle inequality, diameter).
"""

from __future__ import annotations

import math
from functools import lru_cache

import networkx as nx
import numpy as np


class FatTreeTopology:
    """Radix-``r`` fat tree over ``n_nodes`` endpoints.

    Parameters
    ----------
    n_nodes:
        Number of hub endpoints (machine nodes, not CPUs).
    radix:
        Children per router (8 for NUMALink-4).

    Examples
    --------
    >>> t = FatTreeTopology(128, radix=8)
    >>> t.n_levels                      # 16 leaf routers, 2 mid, 1 root
    3
    >>> t.hops(0, 1)                    # same leaf router
    2
    >>> t.hops(0, 127)                  # across the root
    6
    """

    __slots__ = ("n_nodes", "radix", "routers_per_level", "_hops",
                 "_hops_rows")

    def __init__(self, n_nodes: int, radix: int = 8) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be positive")
        if radix < 2:
            raise ValueError("radix must be at least 2")
        self.n_nodes = n_nodes
        self.radix = radix
        # router counts per level, bottom-up
        self.routers_per_level: list[int] = []
        count = n_nodes
        while True:
            count = math.ceil(count / radix)
            self.routers_per_level.append(count)
            if count == 1:
                break
        self._hops = self._build_distance_matrix()
        # plain nested lists: per-pair lookups on the Network.send fast
        # path cost a list index, not a numpy scalar extraction
        self._hops_rows: list[list[int]] = self._hops.tolist()

    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        """Number of router levels (1 = a single leaf/root router)."""
        return len(self.routers_per_level)

    @property
    def diameter_hops(self) -> int:
        """Longest node-to-node distance in hops."""
        return int(self._hops.max()) if self.n_nodes > 1 else 0

    def router_of(self, node: int, level: int) -> int:
        """Index of the level-``level`` ancestor router of ``node``."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range")
        return node // (self.radix ** (level + 1))

    def hops(self, src: int, dst: int) -> int:
        """Hop count between two nodes (0 when src == dst: on-die)."""
        return self._hops_rows[src][dst]

    def _build_distance_matrix(self) -> np.ndarray:
        n = self.n_nodes
        hops = np.zeros((n, n), dtype=np.int16)
        ids = np.arange(n)
        # Lowest common ancestor level via integer division: two nodes
        # share their level-k router iff node // radix**(k+1) matches.
        for level in range(self.n_levels):
            stride = self.radix ** (level + 1)
            same = (ids[:, None] // stride) == (ids[None, :] // stride)
            # first time a pair becomes "same", its LCA is this level
            unset = hops == 0
            newly = same & unset
            hops[newly] = 2 * (level + 1)
        np.fill_diagonal(hops, 0)
        return hops

    # ------------------------------------------------------------------
    def as_graph(self) -> nx.Graph:
        """The topology as a networkx graph (nodes: ``("node", i)`` /
        ``("router", level, j)``) for analysis and visualization."""
        g = nx.Graph()
        for i in range(self.n_nodes):
            g.add_node(("node", i))
            g.add_edge(("node", i), ("router", 0, self.router_of(i, 0)))
        for level in range(1, self.n_levels):
            for j in range(self.routers_per_level[level - 1]):
                g.add_edge(("router", level - 1, j),
                           ("router", level, j // self.radix))
        return g

    @lru_cache(maxsize=None)
    def average_hops(self) -> float:
        """Mean hop distance over all ordered distinct pairs."""
        if self.n_nodes == 1:
            return 0.0
        total = self._hops.sum()
        return float(total) / (self.n_nodes * (self.n_nodes - 1))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"FatTreeTopology(n_nodes={self.n_nodes}, radix={self.radix}, "
                f"levels={self.n_levels})")


    def path_links(self, src: int, dst: int) -> list[tuple]:
        """Directed links traversed from ``src`` to ``dst``, in order.

        Link identifiers:

        * ``("node-up", node)`` / ``("node-down", node)`` — endpoint
          links between a node and its leaf router;
        * ``("up", level, router)`` — from the level-``level`` router
          ``router`` to its parent;
        * ``("down", level, router)`` — from the parent of the
          level-``level`` router ``router`` down into it.

        Used by the router-contention model to reserve every link on the
        path; two flows contend exactly where their paths share a
        directed link.
        """
        if src == dst:
            return []
        if not (0 <= src < self.n_nodes and 0 <= dst < self.n_nodes):
            raise ValueError(f"nodes out of range: {src}, {dst}")
        lca = next(lvl for lvl in range(self.n_levels)
                   if self.router_of(src, lvl) == self.router_of(dst, lvl))
        links: list[tuple] = [("node-up", src)]
        # ascend from src's leaf router to (but excluding) the LCA router
        for lvl in range(lca):
            links.append(("up", lvl, self.router_of(src, lvl)))
        # descend from the LCA into dst's leaf router
        for lvl in range(lca - 1, -1, -1):
            links.append(("down", lvl, self.router_of(dst, lvl)))
        links.append(("node-down", dst))
        return links


#: interned topologies, keyed by (n_nodes, radix).  A 512-node distance
#: matrix plus its row-list mirror weighs megabytes; every Network for a
#: given machine shape can share one immutable instance (nothing mutates
#: a topology after construction), so sweeping many configurations or
#: pooling machines pays the build cost once per shape per process.
_SHARED: dict[tuple[int, int], FatTreeTopology] = {}


def shared_topology(n_nodes: int, radix: int = 8) -> FatTreeTopology:
    """Get-or-build the interned topology for ``(n_nodes, radix)``."""
    key = (n_nodes, radix)
    topo = _SHARED.get(key)
    if topo is None:
        topo = _SHARED[key] = FatTreeTopology(n_nodes, radix)
    return topo
