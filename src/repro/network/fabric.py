"""The interconnect fabric: message transport with latency and accounting.

:class:`Network` owns the topology, the traffic statistics, and the
delivery machinery.  ``send`` is non-blocking: it computes the end-to-end
latency (hops x hop latency, or the crossbar latency for node-local
traffic), records the packet, and schedules delivery.  *Occupancy* at the
endpoints (hub egress serialization when the home fans out N invalidations
or updates) is charged by the sender holding its hub's egress resource —
see :meth:`repro.core.machine.Hub.egress_send`.

Delivery dispatch order:

1. ``msg.reply_to`` set and the kind is a reply → fire the signal with
   ``msg`` (resumes the coroutine blocked on the transaction);
2. otherwise the destination handler registered via :meth:`attach` is
   invoked with the message (request servicing path).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config.parameters import NetworkConfig
from repro.network.message import Message
from repro.network.stats import TrafficStats
from repro.network.topology import shared_topology
from repro.sim.kernel import Simulator


class Network:
    """Latency/statistics model of the fat-tree interconnect."""

    def __init__(self, sim: Simulator, n_nodes: int,
                 config: Optional[NetworkConfig] = None) -> None:
        self.sim = sim
        self.config = config or NetworkConfig()
        # interned: immutable distance tables shared across machines of
        # the same shape (see repro.network.topology.shared_topology)
        self.topology = shared_topology(n_nodes, radix=self.config.router_radix)
        self.stats = TrafficStats()
        # node -> delivery handler; dense, so a list beats a dict probe
        self._handlers: list[Optional[Callable[[Message], None]]] = \
            [None] * n_nodes
        # hooks observing every injected message (tracing, profiling,
        # metrics) — see subscribe_send / the legacy on_send property
        self._send_hooks: list[Callable[[Message, int], None]] = []
        self._legacy_send_hook: Optional[Callable[[Message, int], None]] = None
        # per-node link reservations (timestamp model, contention mode)
        self._uplink_free_at = [0] * n_nodes
        self._downlink_free_at = [0] * n_nodes
        self.link_busy_cycles = 0
        # per-directed-link reservations (router-contention mode)
        self._link_free_at: dict[tuple, int] = {}
        #: optional DelayInjector (see repro.network.faults); perturbs
        #: delivery times while preserving per-(src,dst) FIFO order
        self.delay_injector = None
        #: optional ReorderInjector; relaxes the FIFO guarantee itself
        #: to per-(src,dst,line) with bounded jitter (weak-memory mode)
        self.reorder_injector = None
        self._last_delivery: dict[tuple, int] = {}
        #: per-source injection sequence numbers — the ``(src, seq)``
        #: delivery-phase keys (see Simulator._push_delivery) that give
        #: same-cycle arrivals a canonical, shard-independent order
        self._inj_seq = [0] * n_nodes
        #: ShardContext when this machine is one shard of a partitioned
        #: run (see repro.shard); None = ordinary single-process machine
        self.shard = None
        # (src, dst) -> (hops, base_latency): route metrics are static,
        # so the send fast path pays one dict probe instead of a
        # topology matrix walk plus a latency recomputation per packet
        self._route_cache: dict[tuple[int, int], tuple[int, int]] = {}

    @property
    def n_nodes(self) -> int:
        return self.topology.n_nodes

    # ------------------------------------------------------------------
    def attach(self, node: int, handler: Callable[[Message], None]) -> None:
        """Register the request handler (the hub) for ``node``."""
        self._handlers[node] = handler

    # ------------------------------------------------------------------
    # send observation hooks
    # ------------------------------------------------------------------
    def subscribe_send(self, hook: Callable[[Message, int], None]) -> None:
        """Add a ``hook(msg, hops)`` called on every injected message.

        Hooks are observation-only (tracers, profilers, metrics) and are
        invoked in subscription order; any number may be attached
        concurrently.  Subscribing the same callable twice is a no-op.
        """
        if hook not in self._send_hooks:
            self._send_hooks.append(hook)

    def unsubscribe_send(self, hook: Callable[[Message, int], None]) -> None:
        """Remove a previously subscribed hook (missing hook is a no-op)."""
        try:
            self._send_hooks.remove(hook)
        except ValueError:
            pass

    @property
    def on_send(self) -> Optional[Callable[[Message, int], None]]:
        """Legacy single-hook view: the most recently subscribed hook.

        Assigning replaces *only* the hook previously assigned through
        this property (other subscribers are untouched); assigning
        ``None`` removes it.  New code should use :meth:`subscribe_send`.
        """
        return self._send_hooks[-1] if self._send_hooks else None

    @on_send.setter
    def on_send(self, hook: Optional[Callable[[Message, int], None]]) -> None:
        if self._legacy_send_hook is not None:
            self.unsubscribe_send(self._legacy_send_hook)
        self._legacy_send_hook = hook
        if hook is not None:
            self.subscribe_send(hook)

    def _route(self, src: int, dst: int) -> tuple[int, int]:
        """Cached ``(hops, one-way latency)`` for a node pair."""
        key = (src, dst)
        route = self._route_cache.get(key)
        if route is None:
            if src == dst:
                route = (0, self.config.local_latency_cycles)
            else:
                hops = self.topology.hops(src, dst)
                route = (hops, hops * self.config.hop_latency_cycles)
            self._route_cache[key] = route
        return route

    def latency(self, src: int, dst: int) -> int:
        """One-way latency in CPU cycles between two nodes."""
        return self._route(src, dst)[1]

    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        """Inject ``msg``; it will be delivered after the path latency.

        In link-contention mode, the packet additionally reserves the
        source node's uplink and the destination node's downlink for its
        serialization time (size / link bandwidth), modelled with
        timestamp reservations — deterministic and allocation-free.
        The hot-spot effect this adds is convergence at a *home node's
        downlink* under request storms.
        """
        hops, base_latency = self._route(msg.src_node, msg.dst_node)
        self.stats.record(self.sim.now, msg, hops)
        if self._send_hooks:
            for hook in self._send_hooks:
                hook(msg, hops)
        config = self.config
        if config.model_router_contention and hops > 0:
            self._schedule_delivery(msg, self._reserve_path(msg))
            return
        if not config.model_link_contention or hops == 0:
            # fast path: latency-only delivery, no reservations; the
            # scheduling is inlined (one phase push) — this is every
            # packet's path in the paper-default configuration
            if self.delay_injector is None and self.reorder_injector is None:
                sim = self.sim
                if base_latency:
                    src = msg.src_node
                    seqs = self._inj_seq
                    seq = seqs[src]
                    seqs[src] = seq + 1
                    shard = self.shard
                    if shard is not None and \
                            not shard.owns_node(msg.dst_node):
                        shard.export_unicast(sim.now + base_latency,
                                             src, seq, msg)
                    else:
                        sim._push_delivery(sim.now + base_latency,
                                           (src, seq),
                                           (self._deliver, (msg,)))
                else:
                    # zero-latency implies src == dst (node-local), so
                    # never cross-shard; plain FIFO ring order
                    sim._ring.append((self._deliver, (msg,)))
            else:
                self._schedule_delivery(msg, self.sim.now + base_latency)
            return
        now = self.sim.now
        transfer = max(1, int(msg.size_bytes
                              / self.config.link_bandwidth_bytes_per_cycle))
        up_start = max(now, self._uplink_free_at[msg.src_node])
        self._uplink_free_at[msg.src_node] = up_start + transfer
        arrival = up_start + transfer + base_latency
        down_start = max(arrival, self._downlink_free_at[msg.dst_node])
        self._downlink_free_at[msg.dst_node] = down_start + transfer
        self.link_busy_cycles += 2 * transfer
        self._schedule_delivery(msg, down_start + transfer)

    def send_multicast(self, messages: list[Message]) -> None:
        """Inject a router-replicated packet train (hardware multicast).

        Statistics and send hooks observe every logical packet exactly
        as with per-packet :meth:`send`, but delivery is batched: one
        kernel event per *distinct arrival time* carrying the packets
        due then, expanded lazily at delivery in injection order.  On a
        fat tree the distinct hop counts grow with the tree's depth —
        O(log P) — so a P-way word-update fan-out stops costing O(P)
        host-side events.  Contention and fault-injection modes need
        per-packet reservations/delays and fall back to :meth:`send`.
        """
        config = self.config
        if (config.model_router_contention or config.model_link_contention
                or self.delay_injector is not None
                or self.reorder_injector is not None):
            for msg in messages:
                self.send(msg)
            return
        sim = self.sim
        now = sim.now
        record = self.stats.record
        hooks = self._send_hooks
        seqs = self._inj_seq
        shard = self.shard
        # latency -> (local-member list, group id); the group id is the
        # injection seq of the group's *first* packet, making the whole
        # group one delivery-phase entry keyed like a unicast send.  All
        # of a group's seqs are contiguous (nothing else injects inside
        # this loop), so any member's seq orders the group correctly
        # against every other same-cycle injection from this source —
        # which is why a shard-split subgroup keyed by the same gid
        # dispatches in exactly the single-process position.
        groups: dict[int, tuple[list, int]] = {}
        for msg in messages:
            hops, base_latency = self._route(msg.src_node, msg.dst_node)
            record(now, msg, hops)
            if hooks:
                for hook in hooks:
                    hook(msg, hops)
            if base_latency:
                src = msg.src_node
                seq = seqs[src]
                seqs[src] = seq + 1
                entry = groups.get(base_latency)
                if entry is None:
                    groups[base_latency] = entry = ([], seq)
                local, gid = entry
                if shard is not None and \
                        not shard.owns_node(msg.dst_node):
                    shard.export_group_member(now + base_latency, src, gid,
                                              msg)
                else:
                    if not local:
                        # the event captures the list; packets grouped
                        # later this cycle ride along for free
                        sim._push_delivery(now + base_latency, (src, gid),
                                           (self._deliver_group, (local,)))
                    local.append(msg)
            else:
                sim._ring.append((self._deliver, (msg,)))

    def _deliver_group(self, messages: list[Message]) -> None:
        deliver = self._deliver
        for msg in messages:
            deliver(msg)

    def _reserve_path(self, msg: Message) -> int:
        """Store-and-forward reservation of every link on the path.

        Each directed link is held for the packet's serialization time;
        crossing it additionally costs the hop latency.  Returns the
        delivery time.  Flows sharing a directed link (converging on a
        hot home, funneling through the root) serialize exactly there.
        """
        transfer = max(1, int(msg.size_bytes
                              / self.config.link_bandwidth_bytes_per_cycle))
        t = self.sim.now
        for link in self.topology.path_links(msg.src_node, msg.dst_node):
            start = max(t, self._link_free_at.get(link, 0))
            self._link_free_at[link] = start + transfer
            self.link_busy_cycles += transfer
            t = start + transfer + self.config.hop_latency_cycles
        return t

    def _schedule_delivery(self, msg: Message, when: int) -> None:
        """Schedule delivery at ``when`` (+ any injected fault delay).

        Ordering floor: per-(src,dst) FIFO — the point-to-point ordering
        the interconnect hardware guarantees and the protocol assumes —
        unless a :class:`~repro.network.faults.ReorderInjector` is
        installed, in which case the floor weakens to per
        (src, dst, cache line): same-line traffic stays ordered (the
        per-line coherence state machines require it) while cross-line
        messages may overtake within the injector's bounded window."""
        if self.shard is not None:
            raise RuntimeError(
                "sharded execution supports only the latency-only fast "
                "path; disable contention modelling and fault injection "
                "or run single-process")
        delay = self.delay_injector
        reorder = self.reorder_injector
        if delay is not None:
            when += delay.extra_delay(msg)
        if reorder is not None:
            when += reorder.extra_delay(msg)
            key = reorder.order_key(msg)
        elif delay is not None:
            key = (msg.src_node, msg.dst_node)
        else:
            key = None
        if key is not None:
            floor = self._last_delivery.get(key, -1)
            when = max(when, floor + 1)
            self._last_delivery[key] = when
        self.sim.schedule_at(when, self._deliver, msg)

    def _deliver(self, msg: Message) -> None:
        if msg.reply_to is not None and msg.kind.is_reply:
            # try_fire: a reply racing its requester's retransmission
            # timeout (active messages) is silently dropped — the
            # retransmit path owns delivery then.
            msg.reply_to.try_fire(self.sim, msg)
            return
        handler = self._handlers[msg.dst_node]
        if handler is None:
            raise RuntimeError(
                f"no handler attached to node {msg.dst_node} for {msg!r}")
        handler(msg)

    # ------------------------------------------------------------------
    def reply(self, request: Message, kind, value=None, payload=None,
              src_node: Optional[int] = None) -> None:
        """Convenience: send a reply for ``request`` back to its source,
        carrying the request's ``reply_to`` signal."""
        self.send(Message(
            kind=kind,
            src_node=request.dst_node if src_node is None else src_node,
            dst_node=request.src_node,
            addr=request.addr,
            value=value,
            payload=payload,
            reply_to=request.reply_to,
            requester=request.requester,
        ))
