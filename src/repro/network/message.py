"""Network message taxonomy.

Message kinds follow the SGI SN2-style protocol vocabulary the paper
assumes plus the extensions it introduces (fine-grained get/put, AMO
command/reply) and the mechanisms it compares against (MAO, active
messages).  Sizes: control packets are the 32-byte minimum; word-carrying
packets add one 8-byte word; line-carrying packets add a 128-byte line.

The solid/dashed/dotted arrows of the paper's Figure 1 map to
:attr:`MessageKind.is_request` / :attr:`is_intervention` /
:attr:`is_reply` respectively.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

from repro.sim.primitives import Signal


class MessageKind(enum.Enum):
    """Every message type that can cross the interconnect.

    Classification flags (``is_request``, ``is_reply``,
    ``is_intervention``, ``carries_line``, ``carries_word``) and the
    derived packet size (``packet_bytes``) are precomputed onto each
    member after class creation, so hot-path checks are plain attribute
    loads — no set membership, no property call.  ``__hash__`` is the
    identity slot so members key dicts/Counters at C speed (members are
    singletons, so identity hashing is consistent with equality).
    """

    __hash__ = object.__hash__

    # -- block-grained coherence (substrate S5) -------------------------
    GET_S = "get_s"                  # read request (load miss)
    GET_X = "get_x"                  # exclusive request (store/upgrade/LL-SC)
    DATA_S = "data_s"                # line reply, shared
    DATA_X = "data_x"                # line reply, exclusive
    INVALIDATE = "invalidate"        # directory -> sharer
    INV_ACK = "inv_ack"              # sharer -> requester/home
    INTERVENTION = "intervention"    # directory -> exclusive owner
    INTERVENTION_REPLY = "intervention_reply"  # owner -> requester (data)
    SHARING_WRITEBACK = "sharing_writeback"    # owner -> home (revision)
    WRITEBACK = "writeback"          # eviction of a dirty line
    WRITEBACK_ACK = "writeback_ack"
    UNCACHED_READ = "uncached_read"    # cache-bypassing load (MAO spin)
    UNCACHED_READ_REPLY = "uncached_read_reply"
    UNCACHED_WRITE = "uncached_write"
    UNCACHED_WRITE_ACK = "uncached_write_ack"

    # -- fine-grained update extension (S6) ------------------------------
    FG_GET = "fg_get"                # AMU word-grained coherent read
    FG_GET_REPLY = "fg_get_reply"
    FG_PUT = "fg_put"                # AMU word-grained coherent write
    WORD_UPDATE = "word_update"      # directory -> sharer caches (push)

    # -- active memory operations (S11) ----------------------------------
    AMO_REQUEST = "amo_request"      # processor -> home AMU command
    AMO_REPLY = "amo_reply"          # AMU -> processor (old value)

    # -- conventional memory-side atomics (S10) --------------------------
    MAO_REQUEST = "mao_request"      # uncached IO-space atomic trigger
    MAO_REPLY = "mao_reply"

    # -- active messages (S9) --------------------------------------------
    AM_REQUEST = "am_request"        # message carrying handler + args
    AM_REPLY = "am_reply"            # handler completion notification

_REQUESTS = {
    MessageKind.GET_S, MessageKind.GET_X, MessageKind.WRITEBACK,
    MessageKind.UNCACHED_READ, MessageKind.UNCACHED_WRITE,
    MessageKind.FG_GET, MessageKind.FG_PUT,
    MessageKind.AMO_REQUEST, MessageKind.MAO_REQUEST,
    MessageKind.AM_REQUEST,
}
_REPLIES = {
    MessageKind.DATA_S, MessageKind.DATA_X, MessageKind.INV_ACK,
    MessageKind.INTERVENTION_REPLY, MessageKind.SHARING_WRITEBACK,
    MessageKind.WRITEBACK_ACK, MessageKind.UNCACHED_READ_REPLY,
    MessageKind.UNCACHED_WRITE_ACK, MessageKind.FG_GET_REPLY,
    MessageKind.WORD_UPDATE, MessageKind.AMO_REPLY, MessageKind.MAO_REPLY,
    MessageKind.AM_REPLY,
}
_INTERVENTIONS = {MessageKind.INTERVENTION, MessageKind.INVALIDATE}
_LINE_CARRIERS = {
    MessageKind.DATA_S, MessageKind.DATA_X, MessageKind.INTERVENTION_REPLY,
    MessageKind.SHARING_WRITEBACK, MessageKind.WRITEBACK,
}
_WORD_CARRIERS = {
    MessageKind.WORD_UPDATE, MessageKind.FG_GET_REPLY, MessageKind.FG_PUT,
    MessageKind.AMO_REQUEST, MessageKind.AMO_REPLY,
    MessageKind.MAO_REQUEST, MessageKind.MAO_REPLY,
    MessageKind.UNCACHED_READ_REPLY, MessageKind.UNCACHED_WRITE,
    MessageKind.AM_REQUEST, MessageKind.AM_REPLY,
}

#: fixed packet-size components (bytes)
MIN_PACKET = 32
WORD_BYTES = 8
LINE_BYTES = 128

# Precompute the classification flags and derived size as plain member
# attributes (the Figure 1 solid/dashed/dotted mapping lives here).
for _kind in MessageKind:
    _kind.is_request = _kind in _REQUESTS
    _kind.is_reply = _kind in _REPLIES
    _kind.is_intervention = _kind in _INTERVENTIONS
    _kind.carries_line = _kind in _LINE_CARRIERS
    _kind.carries_word = _kind in _WORD_CARRIERS
    _kind.packet_bytes = MIN_PACKET + (
        LINE_BYTES if _kind.carries_line
        else WORD_BYTES if _kind.carries_word else 0)
del _kind

_msg_ids = itertools.count()


class Message:
    """One interconnect packet.

    ``reply_to`` carries the requester's one-shot :class:`Signal`; replies
    copy it back so delivery can resume the waiting coroutine directly
    (hardware analogue: transaction identifiers matching replies to MSHR
    entries).  ``size_bytes`` is computed from the kind when omitted.

    Hand-rolled ``__slots__`` class rather than a dataclass: hundreds of
    thousands of packets are built per run, and the dataclass machinery
    (``__post_init__`` dispatch, ``default_factory`` call) costs two extra
    function calls per construction for no behavioural difference.
    """

    __slots__ = ("kind", "src_node", "dst_node", "addr", "value", "payload",
                 "reply_to", "requester", "dst_cpu", "is_retransmit",
                 "size_bytes", "msg_id")

    MIN_PACKET = MIN_PACKET
    WORD_BYTES = WORD_BYTES
    LINE_BYTES = LINE_BYTES

    def __init__(self, kind: MessageKind, src_node: int, dst_node: int,
                 addr: Optional[int] = None, value: Any = None,
                 payload: Any = None, reply_to: Optional[Signal] = None,
                 requester: Optional[int] = None,
                 dst_cpu: Optional[int] = None, is_retransmit: bool = False,
                 size_bytes: int = 0, msg_id: Optional[int] = None) -> None:
        self.kind = kind
        self.src_node = src_node
        self.dst_node = dst_node
        self.addr = addr
        self.value = value
        self.payload = payload
        self.reply_to = reply_to
        self.requester = requester        # originating CPU id, if any
        self.dst_cpu = dst_cpu            # target CPU for cache-directed msgs
        self.is_retransmit = is_retransmit
        # derived size cached per kind at module import
        self.size_bytes = size_bytes or kind.packet_bytes
        self.msg_id = next(_msg_ids) if msg_id is None else msg_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        addr = f" a={self.addr:#x}" if self.addr is not None else ""
        return (f"<Msg#{self.msg_id} {self.kind.value} "
                f"{self.src_node}->{self.dst_node}{addr}>")
