"""Interconnect model (substrate S2): radix-8 fat tree, NUMALink-4-like.

Latency model: ``hops(src, dst) * hop_latency`` for remote messages, a
fixed on-die crossbar latency for node-local ones.  Traffic statistics are
the basis for the paper's Figure 7 (network traffic of ticket locks) and
Figure 1 (message anatomy of a three-processor barrier).
"""

from repro.network.message import Message, MessageKind
from repro.network.topology import FatTreeTopology
from repro.network.fabric import Network
from repro.network.stats import TrafficStats

__all__ = [
    "Message",
    "MessageKind",
    "FatTreeTopology",
    "Network",
    "TrafficStats",
]
